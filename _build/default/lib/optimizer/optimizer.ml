module Ast = Mood_sql.Ast
module Classify = Mood_sql.Classify
module Dnf = Mood_sql.Dnf
module Simplify = Mood_sql.Simplify
module Typecheck = Mood_sql.Typecheck
module Catalog = Mood_catalog.Catalog
module Stats = Mood_cost.Stats
module Sel = Mood_cost.Selectivity
module Join_cost = Mood_cost.Join_cost
module Value = Mood_model.Value

type trace = {
  t_imm : (string * Dicts.imm_entry list) list;
  t_paths : Dicts.path_entry list;
  t_others : Dicts.other_entry list;
  t_and_terms : int;
  t_est_cost : float;
}

type optimized = { plan : Plan.node; trace : trace }

let fresh_var_name ~taken attr =
  let base = if String.length attr > 0 then String.make 1 attr.[0] else "x" in
  if not (List.mem base taken) then base
  else begin
    let rec number i =
      let candidate = Printf.sprintf "%s%d" base i in
      if List.mem candidate taken then number (i + 1) else candidate
    in
    number 2
  end

(* One connected group of range variables during planning. *)
type component = {
  mutable plan : Plan.node;
  mutable comp_vars : string list;
  mutable ks : (string * float) list; (* var -> estimated cardinality *)
  mutable accessed : bool;
  mutable in_memory : bool;
}

type planning = {
  env : Dicts.env;
  bindings : (string * string) list; (* var -> class *)
  mutable components : component list;
  mutable taken : string list;       (* used variable names *)
  mutable cost : float;
  mutable imm_dicts : (string * Dicts.imm_entry list) list;
  mutable path_dicts : Dicts.path_entry list;
  mutable other_dicts : Dicts.other_entry list;
}

let class_of p var = List.assoc var p.bindings

let component_of p var =
  List.find (fun c -> List.mem var c.comp_vars) p.components

let k_of_var p var =
  let c = component_of p var in
  Option.value ~default:1. (List.assoc_opt var c.ks)

let set_k p var k =
  let c = component_of p var in
  c.ks <- (var, k) :: List.remove_assoc var c.ks

(* Chain endpoint classes of a path on [cls]: the hosts of each
   navigated attribute (head first), terminal included. *)
let chain_classes p cls path =
  match Catalog.resolve_path p.env.Dicts.catalog ~class_name:cls ~path with
  | Some steps -> List.map fst steps
  | None -> []

let conj = function
  | [] -> Ast.Ptrue
  | first :: rest -> List.fold_left (fun acc q -> Ast.And (acc, q)) first rest

(* ------------------------------------------------------------------ *)
(* Base access per range variable (Section 8.1)                        *)

let base_access p ~(from_item : Ast.from_item) imm_entries imm_methods others =
  let var = from_item.Ast.var in
  let cls = class_of p var in
  let decision = Atomic_order.decide p.env ~cls imm_entries in
  let bind =
    if from_item.Ast.named then Plan.Named_obj { name = from_item.Ast.class_name; var }
    else
      Plan.Bind
        { class_name = cls;
          var;
          every = from_item.Ast.every;
          minus = from_item.Ast.minus
        }
  in
  let with_index =
    if decision.Atomic_order.indexed = [] || from_item.Ast.named then bind
    else
      Plan.Ind_sel
        { source = bind;
          preds =
            List.map
              (fun (e : Dicts.imm_entry) ->
                { Plan.ip_attr = e.Dicts.i_attr;
                  ip_cmp = e.Dicts.i_cmp;
                  ip_constant = e.Dicts.i_constant;
                  ip_kind = Option.value ~default:`Btree e.Dicts.i_index_kind
                })
              decision.Atomic_order.indexed
        }
  in
  (* Residual immediate selections in ascending-selectivity order, then
     parameterless methods and other var-local predicates. *)
  let residual_preds =
    if from_item.Ast.named then
      (* all immediate predicates apply as residual filters on the one object *)
      List.map (fun (e : Dicts.imm_entry) -> e.Dicts.i_pred) imm_entries
    else List.map (fun (e : Dicts.imm_entry) -> e.Dicts.i_pred) decision.Atomic_order.residual
  in
  let extra_preds = imm_methods @ others in
  let selected =
    match residual_preds @ extra_preds with
    | [] -> with_index
    | preds -> Plan.Select { source = with_index; var; pred = conj preds }
  in
  let cardinality = float_of_int (Stats.cardinality p.env.Dicts.stats cls) in
  let extra_sel =
    Dicts.default_other_selectivity ** float_of_int (List.length extra_preds)
  in
  let k =
    if from_item.Ast.named then 1.
    else Float.max 1. (cardinality *. decision.Atomic_order.combined_selectivity *. extra_sel)
  in
  p.cost <-
    p.cost
    +.
    if from_item.Ast.named then Mood_cost.Io_cost.rndcost p.env.Dicts.params 1.
    else decision.Atomic_order.access_cost;
  let accessed =
    decision.Atomic_order.indexed <> [] || residual_preds <> [] || extra_preds <> []
  in
  (selected, k, accessed)

(* ------------------------------------------------------------------ *)
(* Path expressions (Algorithms 8.1 + 8.2)                             *)

(* Build endpoints for Algorithm 8.2 over a path rooted at [var]. *)
let path_endpoints p ~var (entry : Dicts.path_entry) =
  let head = component_of p var in
  let cls = class_of p var in
  let classes = chain_classes p cls (List.map (fun (h : Sel.hop) -> h.Sel.attr) entry.Dicts.p_hops @ [ entry.Dicts.p_terminal_attr ]) in
  (* classes = hosts of each attribute: [C0; C1; ...; C_{m-1}] with the
     terminal attribute hosted by the last. *)
  let intermediate = match classes with [] -> [] | _ :: rest -> rest in
  let n = List.length intermediate in
  let endpoints_tail =
    List.mapi
      (fun i target_cls ->
        let hop = List.nth entry.Dicts.p_hops i in
        let v = fresh_var_name ~taken:p.taken hop.Sel.attr in
        p.taken <- v :: p.taken;
        let bind = Plan.Bind { class_name = target_cls; var = v; every = false; minus = [] } in
        let card = float_of_int (Stats.cardinality p.env.Dicts.stats target_cls) in
        if i = n - 1 then begin
          (* Terminal class carries the atomic selection. *)
          let pred =
            Ast.Cmp
              ( entry.Dicts.p_terminal_cmp,
                Ast.Path (v, [ entry.Dicts.p_terminal_attr ]),
                Ast.Const entry.Dicts.p_terminal_constant )
          in
          let fs =
            Dicts.atomic_selectivity p.env ~cls:target_cls ~attr:entry.Dicts.p_terminal_attr
              entry.Dicts.p_terminal_cmp entry.Dicts.p_terminal_constant
          in
          { Join_order.e_plan = Plan.Select { source = bind; var = v; pred };
            e_var = v;
            e_cls = target_cls;
            e_k = Float.max 1. (card *. fs);
            e_accessed = true;
            e_in_memory = false
          }
        end
        else
          { Join_order.e_plan = bind;
            e_var = v;
            e_cls = target_cls;
            e_k = card;
            e_accessed = false;
            e_in_memory = false
          })
      intermediate
  in
  let head_endpoint =
    { Join_order.e_plan = head.plan;
      e_var = var;
      e_cls = cls;
      e_k = k_of_var p var;
      e_accessed = head.accessed;
      e_in_memory = head.in_memory
    }
  in
  head_endpoint :: endpoints_tail

(* A base plan whose only access is the extent itself (no attribute
   index probes): the shapes a path-index probe can replace. *)
let rec substitutable_bind = function
  | Plan.Bind _ -> true
  | Plan.Select { source; _ } -> substitutable_bind source
  | Plan.Named_obj _ | Plan.Ind_sel _ | Plan.Path_ind_sel _ | Plan.Join _
  | Plan.Project _ | Plan.Group _ | Plan.Sort _ | Plan.Union _ ->
      false

let rec substitute_bind plan replacement =
  match plan with
  | Plan.Bind _ -> replacement
  | Plan.Select { source; var; pred } ->
      Plan.Select { source = substitute_bind source replacement; var; pred }
  | Plan.Named_obj _ | Plan.Ind_sel _ | Plan.Path_ind_sel _ | Plan.Join _
  | Plan.Project _ | Plan.Group _ | Plan.Sort _ | Plan.Union _ ->
      plan

(* Cost of answering the path expression with a path index [Kem 90]:
   probe the index, then fetch the surviving head objects. *)
let path_index_cost p ~cls (entry : Dicts.path_entry) full_path =
  match Catalog.find_path_index p.env.Dicts.catalog ~class_name:cls ~path:full_path with
  | None -> None
  | Some _ -> begin
      match
        Stats.index_stats p.env.Dicts.stats ~cls
          ~attr:("#path:" ^ String.concat "." full_path)
      with
      | None -> None (* index exists but statistics were never derived *)
      | Some ix ->
          let fs =
            Dicts.atomic_selectivity p.env ~cls:entry.Dicts.p_terminal_cls
              ~attr:entry.Dicts.p_terminal_attr entry.Dicts.p_terminal_cmp
              entry.Dicts.p_terminal_constant
          in
          let probe =
            match entry.Dicts.p_terminal_cmp with
            | Ast.Eq -> Mood_cost.Io_cost.indcost p.env.Dicts.params ix ~k:1
            | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
                Mood_cost.Io_cost.rngxcost p.env.Dicts.params ix ~fract:fs
          in
          let heads =
            float_of_int (Stats.cardinality p.env.Dicts.stats cls)
            *. entry.Dicts.p_selectivity
          in
          Some (probe +. Mood_cost.Io_cost.rndcost p.env.Dicts.params heads)
    end

(* First path expression of a variable: a path index when one exists and
   wins, otherwise full Algorithm 8.2. *)
let apply_path_with_join_ordering p ~var (entry : Dicts.path_entry) =
  let comp = component_of p var in
  let cls = class_of p var in
  let full_path =
    List.map (fun (h : Sel.hop) -> h.Sel.attr) entry.Dicts.p_hops
    @ [ entry.Dicts.p_terminal_attr ]
  in
  let endpoints = path_endpoints p ~var entry in
  let joined = Join_order.order p.env ~endpoints ~hops:entry.Dicts.p_hops in
  let via_index =
    if substitutable_bind comp.plan then path_index_cost p ~cls entry full_path else None
  in
  let used_index =
    match via_index with
    | Some index_cost when index_cost < joined.Join_order.r_cost ->
        let probe =
          Plan.Path_ind_sel
            { class_name = cls;
              var;
              path = full_path;
              cmp = entry.Dicts.p_terminal_cmp;
              constant = entry.Dicts.p_terminal_constant
            }
        in
        comp.plan <- substitute_bind comp.plan probe;
        p.cost <- p.cost +. index_cost;
        true
    | Some _ | None ->
        comp.plan <- joined.Join_order.r_plan;
        p.cost <- p.cost +. joined.Join_order.r_cost;
        false
  in
  comp.accessed <- true;
  comp.in_memory <- true;
  set_k p var
    (Float.max 1.
       (k_of_var p var
       *. (if used_index then entry.Dicts.p_selectivity else joined.Join_order.r_head_fraction)))

(* The variable naming the host class of [hop] inside the component:
   the user variable for the head class, otherwise the generated
   variable of the previous hop — found by scanning the plan for the
   most recent bind of that class. *)
let hop_var (hop : Sel.hop) ~plan ~fallback =
  let result = ref None in
  let rec walk = function
    | Plan.Bind { class_name; var; _ } | Plan.Path_ind_sel { class_name; var; _ } ->
        if String.equal class_name hop.Sel.cls then result := Some var
    | Plan.Named_obj _ -> ()
    | Plan.Ind_sel { source; _ } | Plan.Select { source; _ } | Plan.Project { source; _ }
    | Plan.Group { source; _ } | Plan.Sort { source; _ } ->
        walk source
    | Plan.Join { left; right; _ } ->
        walk left;
        walk right
    | Plan.Union nodes -> List.iter walk nodes
  in
  walk plan;
  match !result with Some v -> v | None -> fallback

(* Subsequent path expressions: forward traversal from the shrunken
   candidate set (the paper's Example 8.1 treatment of P1). *)
let apply_path_with_forward_traversal p ~var (entry : Dicts.path_entry) =
  let comp = component_of p var in
  let endpoints = path_endpoints p ~var entry in
  let rec chain plan k hops endpoints_tail =
    match hops, endpoints_tail with
    | [], [] -> plan
    | (hop : Sel.hop) :: hops_rest, (e : Join_order.endpoint) :: endpoints_rest ->
        let pred =
          Ast.Cmp
            ( Ast.Eq,
              Ast.Path (hop_var hop ~plan ~fallback:var, [ hop.Sel.attr ]),
              Ast.Path (e.Join_order.e_var, []) )
        in
        let edge =
          { Join_cost.cls = hop.Sel.cls; attr = hop.Sel.attr; source_in_memory = true }
        in
        p.cost <- p.cost +. Join_cost.forward p.env.Dicts.params p.env.Dicts.stats edge ~k_c:k;
        let plan =
          Plan.Join
            { left = plan;
              right = e.Join_order.e_plan;
              method_ = Join_cost.Forward_traversal;
              pred
            }
        in
        let fan =
          match Stats.ref_stats p.env.Dicts.stats ~cls:hop.Sel.cls ~attr:hop.Sel.attr with
          | Some r -> r.Stats.fan
          | None -> 1.
        in
        chain plan (Float.max 1. (k *. fan)) hops_rest endpoints_rest
    | _, _ -> plan
  in
  match endpoints with
  | _ :: endpoints_tail ->
      comp.plan <- chain comp.plan (k_of_var p var) entry.Dicts.p_hops endpoints_tail;
      comp.accessed <- true;
      comp.in_memory <- true;
      set_k p var (Float.max 1. (k_of_var p var *. entry.Dicts.p_selectivity))
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Explicit joins                                                      *)

let merge_components p a b plan =
  let merged =
    { plan;
      comp_vars = a.comp_vars @ b.comp_vars;
      ks = a.ks @ b.ks;
      accessed = true;
      in_memory = true
    }
  in
  p.components <- merged :: List.filter (fun c -> c != a && c != b) p.components;
  merged

let apply_explicit_join p (left : Classify.side) cmp (right : Classify.side) pred =
  let lcomp = component_of p left.Classify.var in
  let rcomp = component_of p right.Classify.var in
  if lcomp == rcomp then
    (* Same component already: a residual filter. *)
    lcomp.plan <- Plan.Select { source = lcomp.plan; var = left.Classify.var; pred }
  else begin
    match cmp, left.Classify.path, right.Classify.path with
    | Ast.Eq, (_ :: _ as lpath), [] ->
        (* Reference chain from the left variable into the right one:
           traverse the prefix forward, then join the final reference
           edge with the cheapest technique. *)
        let cls = class_of p left.Classify.var in
        let hosts = chain_classes p cls lpath in
        let hops =
          List.mapi (fun i attr -> { Sel.cls = List.nth hosts i; attr }) lpath
        in
        let prefix_hops, last_hop =
          match List.rev hops with
          | last :: prefix_rev -> (List.rev prefix_rev, last)
          | [] -> assert false
        in
        (* Forward-traverse the prefix inside the left component. *)
        let k = ref (k_of_var p left.Classify.var) in
        List.iter
          (fun (hop : Sel.hop) ->
            let target =
              match
                Catalog.resolve_path p.env.Dicts.catalog ~class_name:hop.Sel.cls
                  ~path:[ hop.Sel.attr ]
              with
              | Some [ (_, ty) ] -> Option.value ~default:hop.Sel.cls (Mood_model.Mtype.referenced_class ty)
              | _ -> hop.Sel.cls
            in
            let v = fresh_var_name ~taken:p.taken hop.Sel.attr in
            p.taken <- v :: p.taken;
            let right_bind = Plan.Bind { class_name = target; var = v; every = false; minus = [] } in
            let hop_pred =
              Ast.Cmp
                ( Ast.Eq,
                  Ast.Path
                    (hop_var hop ~plan:lcomp.plan ~fallback:left.Classify.var, [ hop.Sel.attr ]),
                  Ast.Path (v, []) )
            in
            let edge =
              { Join_cost.cls = hop.Sel.cls; attr = hop.Sel.attr; source_in_memory = lcomp.in_memory }
            in
            p.cost <- p.cost +. Join_cost.forward p.env.Dicts.params p.env.Dicts.stats edge ~k_c:!k;
            lcomp.plan <-
              Plan.Join
                { left = lcomp.plan; right = right_bind; method_ = Join_cost.Forward_traversal; pred = hop_pred };
            lcomp.in_memory <- true;
            let fan =
              match Stats.ref_stats p.env.Dicts.stats ~cls:hop.Sel.cls ~attr:hop.Sel.attr with
              | Some r -> r.Stats.fan
              | None -> 1.
            in
            k := Float.max 1. (!k *. fan))
          prefix_hops;
        (* Final edge: cheapest of the four techniques. *)
        let right_k = k_of_var p right.Classify.var in
        let method_, jc, _js =
          Join_order.edge_cost_and_selectivity p.env ~left_k:!k ~right_k
            ~right_accessed:rcomp.accessed ~left_in_memory:lcomp.in_memory ~hop:last_hop
        in
        p.cost <- p.cost +. jc;
        let join_pred =
          Ast.Cmp
            ( Ast.Eq,
              Ast.Path
                ( hop_var last_hop ~plan:lcomp.plan ~fallback:left.Classify.var,
                  [ last_hop.Sel.attr ] ),
              Ast.Path (right.Classify.var, []) )
        in
        ignore
          (merge_components p lcomp rcomp
             (Plan.Join { left = lcomp.plan; right = rcomp.plan; method_; pred = join_pred }))
    | _, _, _ ->
        (* General theta join: evaluated by scanning (backward-traversal
           style nested comparison). *)
        let scan_cost =
          Mood_cost.Io_cost.seqcost p.env.Dicts.params
            (Stats.nbpages p.env.Dicts.stats (class_of p right.Classify.var))
        in
        p.cost <- p.cost +. scan_cost;
        ignore
          (merge_components p lcomp rcomp
             (Plan.Join
                { left = lcomp.plan;
                  right = rcomp.plan;
                  method_ = Join_cost.Backward_traversal;
                  pred
                }))
  end

(* ------------------------------------------------------------------ *)
(* AND-term planning                                                   *)

let plan_and_term env bindings (from_items : Ast.from_item list) term trace_sink =
  let p =
    { env;
      bindings;
      components = [];
      taken = List.map fst bindings;
      cost = 0.;
      imm_dicts = [];
      path_dicts = [];
      other_dicts = []
    }
  in
  let classified = Classify.classify_term ~catalog:env.Dicts.catalog ~bindings term in
  let imm_of var =
    List.filter_map
      (function
        | Classify.Immediate { target; cmp; constant }
          when String.equal target.Classify.var var && List.length target.Classify.path = 1 ->
            let attr = List.hd target.Classify.path in
            Some (Dicts.imm_entry env ~var ~cls:(List.assoc var bindings) ~attr cmp constant)
        | _ -> None)
      classified
  in
  let imm_method_preds var =
    List.filter_map
      (function
        | Classify.Immediate_method { var = v; method_name; cmp; constant }
          when String.equal v var ->
            Some
              (Ast.Cmp (cmp, Ast.Method_call (v, [], method_name, []), Ast.Const constant))
        | _ -> None)
      classified
  in
  let other_preds_of var =
    List.filter_map
      (function
        | Classify.Other pred -> begin
            match Ast.predicate_vars pred with
            | [ v ] when String.equal v var -> Some pred
            | _ -> None
          end
        | _ -> None)
      classified
  in
  let multi_var_others =
    List.filter_map
      (function
        | Classify.Other pred -> begin
            match List.sort_uniq String.compare (Ast.predicate_vars pred) with
            | [] | [ _ ] -> None
            | _ -> Some pred
          end
        | _ -> None)
      classified
  in
  (* 1. Base access per variable. *)
  List.iter
    (fun (item : Ast.from_item) ->
      let var = item.Ast.var in
      let imm = imm_of var in
      let plan, k, accessed =
        base_access p ~from_item:item imm (imm_method_preds var) (other_preds_of var)
      in
      p.imm_dicts <- (var, imm) :: p.imm_dicts;
      p.components <-
        { plan; comp_vars = [ var ]; ks = [ (var, k) ]; accessed; in_memory = false }
        :: p.components)
    from_items;
  p.components <- List.rev p.components;
  (* 2. Path expressions per variable, ordered by F/(1-s). *)
  List.iter
    (fun (item : Ast.from_item) ->
      let var = item.Ast.var in
      let cls = item.Ast.class_name in
      let entries =
        List.filter_map
          (function
            | Classify.Path_selection { target; cmp; constant }
              when String.equal target.Classify.var var ->
                Dicts.path_entry env ~var ~cls ~path:target.Classify.path ~cmp ~constant
                  ~k:(float_of_int (Stats.cardinality env.Dicts.stats cls))
            | _ -> None)
          classified
      in
      let ordered = Path_order.order_entries entries in
      p.path_dicts <- p.path_dicts @ ordered;
      List.iteri
        (fun i entry ->
          if i = 0 then apply_path_with_join_ordering p ~var entry
          else apply_path_with_forward_traversal p ~var entry)
        ordered)
    from_items;
  (* 3. Explicit joins. *)
  List.iter
    (function
      | Classify.Explicit_join { left; cmp; right } ->
          let pred =
            Ast.Cmp
              ( cmp,
                Ast.Path (left.Classify.var, left.Classify.path),
                Ast.Path (right.Classify.var, right.Classify.path) )
          in
          apply_explicit_join p left cmp right pred
      | Classify.Immediate _ | Classify.Immediate_method _ | Classify.Path_selection _
      | Classify.Other _ ->
          ())
    classified;
  (* 4. Cross products for any disconnected components. *)
  let rec connect = function
    | [] -> None
    | [ only ] -> Some only
    | a :: b :: rest ->
        let merged =
          merge_components p a b
            (Plan.Join
               { left = a.plan;
                 right = b.plan;
                 method_ = Join_cost.Backward_traversal;
                 pred = Ast.Ptrue
               })
        in
        connect (merged :: rest)
  in
  let final =
    match connect p.components with
    | Some c -> c
    | None -> assert false (* FROM is never empty *)
  in
  (* Record every Other-classified predicate in the OtherSelInfo
     dictionary (Section 7). *)
  List.iter
    (function
      | Classify.Other pred ->
          p.other_dicts <-
            p.other_dicts
            @ [ { Dicts.o_pred = pred; o_selectivity = Dicts.default_other_selectivity } ]
      | Classify.Immediate _ | Classify.Immediate_method _ | Classify.Path_selection _
      | Classify.Explicit_join _ ->
          ())
    classified;
  (* 5. Residual multi-variable Other predicates. *)
  let final_plan =
    match multi_var_others with
    | [] -> final.plan
    | preds ->
        Plan.Select { source = final.plan; var = List.hd final.comp_vars; pred = conj preds }
  in
  trace_sink p;
  (final_plan, p.cost)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let optimize env (q : Ast.query) =
  let bindings = Typecheck.check_query ~catalog:env.Dicts.catalog q in
  let where = Option.map Simplify.predicate q.Ast.where in
  let terms =
    match where with
    | None -> [ [] ]
    | Some p -> begin
        match Dnf.of_predicate p with
        | [] -> [] (* provably false *)
        | terms -> terms
      end
  in
  let imm_acc = ref [] and path_acc = ref [] and other_acc = ref [] and cost_acc = ref 0. in
  let sink (p : planning) =
    imm_acc := !imm_acc @ List.rev p.imm_dicts;
    path_acc := !path_acc @ p.path_dicts;
    other_acc := !other_acc @ p.other_dicts;
    cost_acc := !cost_acc +. p.cost
  in
  let term_plans =
    List.map (fun term -> fst (plan_and_term env bindings q.Ast.from term sink)) terms
  in
  let unioned =
    match term_plans with
    | [] ->
        (* WHERE is FALSE: an empty union. *)
        Plan.Union []
    | [ only ] -> only
    | plans -> Plan.Union plans
  in
  let aggregates =
    List.concat_map (fun (i : Ast.select_item) -> Ast.aggregates_in i.Ast.expr) q.Ast.select
    @ (match q.Ast.having with Some h -> Ast.predicate_aggregates h | None -> [])
    @ List.concat_map (fun (e, _) -> Ast.aggregates_in e) q.Ast.order_by
  in
  let grouped =
    if q.Ast.group_by = [] && q.Ast.having = None && aggregates = [] then unioned
    else
      Plan.Group { source = unioned; by = q.Ast.group_by; having = q.Ast.having; aggregates }
  in
  let projected =
    match q.Ast.select with
    | [] -> grouped (* SELECT *: keep binding rows *)
    | items -> Plan.Project { source = grouped; items }
  in
  let sorted =
    if q.Ast.order_by = [] then projected
    else Plan.Sort { source = projected; keys = q.Ast.order_by }
  in
  { plan = sorted;
    trace =
      { t_imm = !imm_acc;
        t_paths = !path_acc;
        t_others = !other_acc;
        t_and_terms = List.length terms;
        t_est_cost = !cost_acc
      }
  }

let optimize_statement env = function
  | Ast.Select q -> Some (optimize env q)
  | Ast.Create_class _ | Ast.Create_index _ | Ast.New_object _ | Ast.Update _
  | Ast.Delete _ | Ast.Define_method _ | Ast.Drop_method _ | Ast.Name_object _
  | Ast.Drop_name _ ->
      None
