(** The MOODSQL query optimizer (Sections 7–8).

    The pipeline the paper describes: parse tree → expression
    simplification → DNF → per-AND-term classification into the
    ImmSelInfo / PathSelInfo / OtherSelInfo dictionaries → ordering of
    atomic selections (8.1's index-count inequality + selectivity
    order) → ordering of path expressions by [F/(1-s)] (Algorithm 8.1)
    → implicit-join ordering for the first path expression (Algorithm
    8.2), with subsequent path expressions forward-traversed from the
    shrinking candidate set → explicit joins → UNION of the AND-term
    subplans → GROUP BY/HAVING → projection → ORDER BY (Figures
    7.1–7.2). *)

type trace = {
  t_imm : (string * Dicts.imm_entry list) list;  (** per range variable *)
  t_paths : Dicts.path_entry list;               (** in execution order *)
  t_others : Dicts.other_entry list;             (** OtherSelInfo *)
  t_and_terms : int;
  t_est_cost : float;
}

type optimized = { plan : Plan.node; trace : trace }

val optimize : Dicts.env -> Mood_sql.Ast.query -> optimized
(** Raises [Mood_sql.Typecheck.Type_error] on ill-typed queries. *)

val optimize_statement : Dicts.env -> Mood_sql.Ast.statement -> optimized option
(** [Some] for SELECT statements, [None] for DDL/DML (executed without
    planning). *)

val fresh_var_name : taken:string list -> string -> string
(** Variable naming for generated binds: the first letter of the
    attribute that reaches the class ([drivetrain] → [d]), suffixed on
    collision — matching the paper's example plans. *)
