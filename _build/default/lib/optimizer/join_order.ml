module Ast = Mood_sql.Ast
module Stats = Mood_cost.Stats
module Sel = Mood_cost.Selectivity
module Join_cost = Mood_cost.Join_cost

type endpoint = {
  e_plan : Plan.node;
  e_var : string;
  e_cls : string;
  e_k : float;
  e_accessed : bool;
  e_in_memory : bool;
}

type result = {
  r_plan : Plan.node;
  r_cost : float;
  r_head_fraction : float;
  r_ks : (string * float) list;
}

(* A state covers a contiguous run of chain positions. *)
type state = {
  plan : Plan.node;
  ks : (string * float) list;      (* class -> surviving k, chain order *)
  vars : (string * string) list;   (* class -> variable *)
  accessed : bool;
  in_memory : bool;
}

let target_of env (hop : Sel.hop) =
  match Stats.ref_stats env.Dicts.stats ~cls:hop.Sel.cls ~attr:hop.Sel.attr with
  | Some r -> r.Stats.target
  | None -> begin
      (* No statistics for the edge (fresh database): the schema still
         knows where the reference points. *)
      match
        Mood_catalog.Catalog.attribute_type env.Dicts.catalog ~class_name:hop.Sel.cls
          ~attr:hop.Sel.attr
      with
      | Some ty ->
          Option.value ~default:hop.Sel.cls (Mood_model.Mtype.referenced_class ty)
      | None -> hop.Sel.cls
    end

let fan_of env (hop : Sel.hop) =
  match Stats.ref_stats env.Dicts.stats ~cls:hop.Sel.cls ~attr:hop.Sel.attr with
  | Some r -> r.Stats.fan
  | None -> 1.

let join_index_stats env (hop : Sel.hop) =
  Stats.index_stats env.Dicts.stats ~cls:hop.Sel.cls ~attr:("#join:" ^ hop.Sel.attr)

let edge_cost_and_selectivity env ~left_k ~right_k ~right_accessed ~left_in_memory ~hop =
  let edge =
    { Join_cost.cls = hop.Sel.cls; attr = hop.Sel.attr; source_in_memory = left_in_memory }
  in
  let method_, jc =
    Join_cost.cheapest env.Dicts.params env.Dicts.stats edge ~k_c:left_k ~k_d:right_k
      ~d_accessed:right_accessed ~join_index:(join_index_stats env hop)
  in
  let target = target_of env hop in
  let d_card = float_of_int (Stats.cardinality env.Dicts.stats target) in
  let terminal_selectivity = if d_card > 0. then Float.min 1. (right_k /. d_card) else 1. in
  let js =
    Sel.path env.Dicts.stats ~hops:[ hop ] ~terminal_cls:target ~terminal_selectivity ()
  in
  (method_, jc, js)

let state_of_endpoint e =
  { plan = e.e_plan;
    ks = [ (e.e_cls, e.e_k) ];
    vars = [ (e.e_cls, e.e_var) ];
    accessed = e.e_accessed;
    in_memory = e.e_in_memory
  }

let k_of state cls = Option.value ~default:0. (List.assoc_opt cls state.ks)

let var_of state cls = Option.value ~default:cls (List.assoc_opt cls state.vars)

(* Merge two adjacent states through [hop]. *)
let merge env left right hop method_ js =
  let host = hop.Sel.cls and target = target_of env hop in
  let pred =
    Ast.Cmp (Ast.Eq, Ast.Path (var_of left host, [ hop.Sel.attr ]), Ast.Path (var_of right target, []))
  in
  let left_k = k_of left host in
  let new_left_k = left_k *. js in
  (* Left-side classes shrink by the edge selectivity; the right target
     shrinks to the objects actually reachable from the surviving left
     side. *)
  let scale_left = if left_k > 0. then new_left_k /. left_k else 1. in
  let right_target_k = k_of right target in
  let reachable = new_left_k *. fan_of env hop in
  let new_right_k = Float.min right_target_k (Float.max 1. reachable) in
  let scale_right = if right_target_k > 0. then new_right_k /. right_target_k else 1. in
  { plan = Plan.Join { left = left.plan; right = right.plan; method_; pred };
    ks =
      List.map (fun (c, k) -> (c, k *. scale_left)) left.ks
      @ List.map (fun (c, k) -> (c, k *. scale_right)) right.ks;
    vars = left.vars @ right.vars;
    accessed = true;
    in_memory = true
  }

type chain = { states : state list; hops : Sel.hop list }

let evaluate_edges env chain =
  (* For each adjacent pair, its (method, jc, js, rank). *)
  let rec go states hops acc =
    match states, hops with
    | _ :: [], [] | [], [] -> List.rev acc
    | left :: (right :: _ as rest), hop :: hops_rest ->
        let method_, jc, js =
          edge_cost_and_selectivity env ~left_k:(k_of left hop.Sel.cls)
            ~right_k:(k_of right (target_of env hop))
            ~right_accessed:right.accessed ~left_in_memory:left.in_memory ~hop
        in
        let rank = if js >= 1. then infinity else jc /. (1. -. js) in
        go rest hops_rest ((method_, jc, js, rank) :: acc)
    | _, _ -> invalid_arg "Join_order: states/hops length mismatch"
  in
  go chain.states chain.hops []

let merge_at env chain index =
  let edges = evaluate_edges env chain in
  let method_, jc, js, _ = List.nth edges index in
  let hop = List.nth chain.hops index in
  let rec rebuild i states hops =
    match states, hops with
    | left :: right :: rest, _ :: hops_rest when i = 0 ->
        (merge env left right hop method_ js :: rest, hops_rest)
    | s :: rest, h :: hops_rest ->
        let states', hops' = rebuild (i - 1) rest hops_rest in
        (s :: states', h :: hops')
    | _, _ -> invalid_arg "Join_order.merge_at: bad index"
  in
  let states, hops = rebuild index chain.states chain.hops in
  ({ states; hops }, jc)

let order env ~endpoints ~hops =
  if endpoints = [] then invalid_arg "Join_order.order: empty chain";
  if List.length hops <> List.length endpoints - 1 then
    invalid_arg "Join_order.order: hops must connect consecutive endpoints";
  let head_cls = (List.hd endpoints).e_cls in
  let head_k0 = Float.max 1. (List.hd endpoints).e_k in
  let chain = { states = List.map state_of_endpoint endpoints; hops } in
  let rec loop chain total =
    match chain.states with
    | [ final ] ->
        { r_plan = final.plan;
          r_cost = total;
          r_head_fraction = Float.min 1. (k_of final head_cls /. head_k0);
          r_ks = final.ks
        }
    | _ :: _ :: _ ->
        let edges = evaluate_edges env chain in
        let best_index, _ =
          List.fold_left
            (fun (best_i, best_rank) (i, (_, _, _, rank)) ->
              if rank < best_rank then (i, rank) else (best_i, best_rank))
            (0, infinity)
            (List.mapi (fun i e -> (i, e)) edges)
        in
        let chain, jc = merge_at env chain best_index in
        loop chain (total +. jc)
    | [] -> invalid_arg "Join_order.order: empty chain"
  in
  loop chain 0.

let exhaustive env ~endpoints ~hops =
  if endpoints = [] then invalid_arg "Join_order.exhaustive: empty chain";
  let head_cls = (List.hd endpoints).e_cls in
  let head_k0 = Float.max 1. (List.hd endpoints).e_k in
  let rec best chain total =
    match chain.states with
    | [ final ] ->
        { r_plan = final.plan;
          r_cost = total;
          r_head_fraction = Float.min 1. (k_of final head_cls /. head_k0);
          r_ks = final.ks
        }
    | _ :: _ :: _ ->
        let n_edges = List.length chain.hops in
        let candidates =
          List.init n_edges (fun i ->
              let chain', jc = merge_at env chain i in
              best chain' (total +. jc))
        in
        List.fold_left
          (fun acc c -> if c.r_cost < acc.r_cost then c else acc)
          (List.hd candidates) (List.tl candidates)
    | [] -> invalid_arg "Join_order.exhaustive: empty chain"
  in
  best { states = List.map state_of_endpoint endpoints; hops } 0.
