lib/core/db.ml: Buffer List Mood_algebra Mood_catalog Mood_cost Mood_executor Mood_funcmgr Mood_model Mood_optimizer Mood_sql Mood_storage Option Printf String
