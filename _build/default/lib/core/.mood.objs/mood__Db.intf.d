lib/core/db.mli: Mood_catalog Mood_cost Mood_executor Mood_funcmgr Mood_model Mood_optimizer Mood_storage
