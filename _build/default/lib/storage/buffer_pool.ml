type intent = Sequential | Random

type stats = { hits : int; misses : int; evictions : int }

type frame = { key : int * int; mutable dirty : bool; mutable stamp : int }

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int * int, frame) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable last_sequential : (int * int) option;
      (* last page faulted with Sequential intent, to detect run starts *)
}

let create ~disk ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity <= 0";
  { disk;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    last_sequential = None
  }

let capacity t = t.capacity

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ frame acc ->
        match acc with
        | None -> Some frame
        | Some best -> if frame.stamp < best.stamp then Some frame else acc)
      t.frames None
  in
  match victim with
  | None -> ()
  | Some frame ->
      if frame.dirty then Disk.write_page t.disk;
      Hashtbl.remove t.frames frame.key;
      t.evictions <- t.evictions + 1

let fault t key intent =
  t.misses <- t.misses + 1;
  begin
    match intent with
    | Random ->
        Disk.read_random t.disk;
        t.last_sequential <- None
    | Sequential ->
        let file, page = key in
        let first =
          match t.last_sequential with
          | Some (f, p) -> not (f = file && p = page - 1)
          | None -> true
        in
        Disk.read_sequential t.disk ~first;
        t.last_sequential <- Some key
  end;
  if Hashtbl.length t.frames >= t.capacity then evict_lru t;
  Hashtbl.replace t.frames key { key; dirty = false; stamp = tick t }

let access t ~file ~page ~intent =
  let key = (file, page) in
  match Hashtbl.find_opt t.frames key with
  | Some frame ->
      t.hits <- t.hits + 1;
      frame.stamp <- tick t;
      (* A buffered page costs nothing, but it still advances a
         sequential run so the next on-disk page is not charged a seek. *)
      if intent = Sequential then t.last_sequential <- Some key
  | None -> fault t key intent

let modify t ~file ~page =
  let key = (file, page) in
  begin
    match Hashtbl.find_opt t.frames key with
    | Some frame ->
        t.hits <- t.hits + 1;
        frame.stamp <- tick t
    | None -> fault t key Random
  end;
  match Hashtbl.find_opt t.frames key with
  | Some frame -> frame.dirty <- true
  | None -> assert false

let flush t =
  Hashtbl.iter
    (fun _ frame ->
      if frame.dirty then begin
        Disk.write_page t.disk;
        frame.dirty <- false
      end)
    t.frames

let invalidate t ~file =
  let doomed =
    Hashtbl.fold (fun (f, p) _ acc -> if f = file then (f, p) :: acc else acc) t.frames []
  in
  List.iter (Hashtbl.remove t.frames) doomed

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let resident t ~file ~page = Hashtbl.mem t.frames (file, page)

let clear t =
  Hashtbl.reset t.frames;
  t.last_sequential <- None;
  reset_stats t
