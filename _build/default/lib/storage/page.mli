(** Slotted pages.

    A page holds variable-length records in numbered slots. Slot numbers
    are stable across deletions (a deleted slot becomes a tombstone and
    may be reused). Space accounting follows the declared block size:
    each record costs its payload plus a slot-entry overhead. *)

type t

type slot = int

val slot_overhead : int
(** Bytes charged per record beyond the payload (slot-directory entry). *)

val create : capacity:int -> t
(** An empty page with [capacity] usable bytes. *)

val capacity : t -> int

val free_space : t -> int

val record_count : t -> int
(** Live (non-tombstoned) records. *)

val fits : t -> int -> bool
(** [fits page n] — can a record of [n] payload bytes be inserted? *)

val insert : t -> string -> slot option
(** Inserts a record, returning its slot, or [None] when it does not
    fit. *)

val get : t -> slot -> string option
(** [None] for tombstoned or out-of-range slots. *)

val delete : t -> slot -> bool
(** Tombstones a slot; [false] if it was not live. *)

val update : t -> slot -> string -> bool
(** Replaces a live record in place when the new payload fits in the
    page's remaining space (plus the old record's); [false] otherwise —
    the caller must then delete + reinsert elsewhere. *)

val iter : t -> (slot -> string -> unit) -> unit
(** Live records in slot order. *)

val fold : t -> init:'a -> f:('a -> slot -> string -> 'a) -> 'a
