(** Binary join indexes and path indexes [Kem 90].

    A binary join index materializes the implicit join induced by a
    reference attribute [C.A -> D]: it stores (c, d) OID pairs indexed
    in both directions, so either side can be probed at [INDCOST]. A
    path index extends this along a whole path expression
    [C0.a1.a2...an]: it maps the *terminal* object (or terminal atomic
    value) to the head objects of class [C0] that reach it. *)

module Binary : sig
  type t

  val create : file_id:int -> buffer:Buffer_pool.t -> unit -> t
  (** Uses two B+-trees internally; [file_id] and [file_id + 1] identify
      their node pages in the buffer pool. *)

  val add : t -> c:Mood_model.Oid.t -> d:Mood_model.Oid.t -> unit

  val forward : t -> c:Mood_model.Oid.t -> Mood_model.Oid.t list
  (** All [d] joined with [c]. *)

  val backward : t -> d:Mood_model.Oid.t -> Mood_model.Oid.t list
  (** All [c] joined with [d]. *)

  val remove : t -> c:Mood_model.Oid.t -> d:Mood_model.Oid.t -> bool

  val pairs : t -> int

  val forward_stats : t -> Btree.stats
  val backward_stats : t -> Btree.stats
end

module Path : sig
  type t

  val create : file_id:int -> buffer:Buffer_pool.t -> path:string list -> unit -> t
  (** [path] is the attribute chain the index covers (for catalog
      bookkeeping and matching). *)

  val path : t -> string list

  val add : t -> terminal:Mood_model.Value.t -> head:Mood_model.Oid.t -> unit
  (** Records that [head] reaches [terminal] along the path. *)

  val probe : t -> terminal:Mood_model.Value.t -> Mood_model.Oid.t list

  val probe_range :
    t -> lo:Btree.bound -> hi:Btree.bound -> Mood_model.Oid.t list
  (** Heads whose terminal value falls in the range (duplicates removed). *)

  val remove : t -> terminal:Mood_model.Value.t -> head:Mood_model.Oid.t -> bool

  val stats : t -> Btree.stats
end
