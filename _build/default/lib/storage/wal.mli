(** Write-ahead log with redo recovery and backup/restore.

    ESM supplies "backup and recovery of data"; this substitute logs
    logical record operations against heap files, supports checkpoints,
    and can rebuild file contents by replay. The log is an in-memory
    sequence with an explicit [persisted] watermark so tests can model a
    crash that loses the unpersisted tail. *)

type t

type record =
  | Begin of int                       (** transaction id *)
  | Commit of int
  | Abort of int
  | Insert of { txn : int; file : int; rid : Heap_file.rid; payload : string }
  | Delete of { txn : int; file : int; rid : Heap_file.rid; before : string }
  | Update of { txn : int; file : int; rid : Heap_file.rid; before : string; after : string }
  | Checkpoint of int list             (** active transactions *)

val create : unit -> t

val append : t -> record -> int
(** Appends and returns the LSN. *)

val flush : t -> unit
(** Moves the persisted watermark to the end of the log (force at
    commit). *)

val lose_unpersisted : t -> int
(** Simulates a crash: truncates the log at the watermark, returning the
    number of records lost. *)

val records : t -> record list
(** Persisted and unpersisted records, oldest first. *)

val length : t -> int

val replay :
  t ->
  apply:(record -> unit) ->
  unit
(** Redo pass: feeds every persisted record belonging to a *committed*
    transaction to [apply], in log order. Records of transactions with
    no persisted [Commit] are skipped (their effects must not survive),
    as are [Begin]/[Commit]/[Abort]/[Checkpoint] markers. *)

val undo_records : t -> int -> record list
(** The data records of the given transaction, newest first — what an
    abort must compensate. *)
