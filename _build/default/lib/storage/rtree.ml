type rect = { x0 : float; y0 : float; x1 : float; y1 : float }

let rect ~x0 ~y0 ~x1 ~y1 =
  if x0 > x1 || y0 > y1 then invalid_arg "Rtree.rect: malformed rectangle";
  { x0; y0; x1; y1 }

let rect_overlaps a b = a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let rect_contains outer inner =
  outer.x0 <= inner.x0 && outer.y0 <= inner.y0 && inner.x1 <= outer.x1
  && inner.y1 <= outer.y1

let rect_area r = (r.x1 -. r.x0) *. (r.y1 -. r.y0)

let mbr a b =
  { x0 = Float.min a.x0 b.x0;
    y0 = Float.min a.y0 b.y0;
    x1 = Float.max a.x1 b.x1;
    y1 = Float.max a.y1 b.y1
  }

type 'a node = {
  mutable bbox : rect;
  mutable body : 'a body;
  page : int;
}

and 'a body = Leaf of (rect * 'a) list | Branch of 'a node list

type 'a t = {
  file_id : int;
  buffer : Buffer_pool.t;
  max_entries : int;
  mutable root : 'a node;
  mutable size : int;
  mutable next_page : int;
}

let empty_rect = { x0 = 0.; y0 = 0.; x1 = 0.; y1 = 0. }

let create ~file_id ~buffer ?(max_entries = 8) () =
  if max_entries < 4 then invalid_arg "Rtree.create: max_entries < 4";
  { file_id;
    buffer;
    max_entries;
    root = { bbox = empty_rect; body = Leaf []; page = 0 };
    size = 0;
    next_page = 1
  }

let touch t node =
  Buffer_pool.access t.buffer ~file:t.file_id ~page:node.page ~intent:Buffer_pool.Random

let fresh_page t =
  let p = t.next_page in
  t.next_page <- p + 1;
  p

let enlargement current extra = rect_area (mbr current extra) -. rect_area current

(* Guttman quadratic split over abstract entries with a bbox accessor. *)
let quadratic_split bbox_of entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  (* Pick the seed pair wasting the most area together. *)
  let seed_a = ref 0 and seed_b = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = bbox_of arr.(i) and rj = bbox_of arr.(j) in
      let waste = rect_area (mbr ri rj) -. rect_area ri -. rect_area rj in
      if waste > !worst then begin
        worst := waste;
        seed_a := i;
        seed_b := j
      end
    done
  done;
  let group_a = ref [ arr.(!seed_a) ] and group_b = ref [ arr.(!seed_b) ] in
  let box_a = ref (bbox_of arr.(!seed_a)) and box_b = ref (bbox_of arr.(!seed_b)) in
  let rest =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i -> if i = !seed_a || i = !seed_b then None else Some arr.(i))
            (Seq.init n Fun.id)))
  in
  let assign entry =
    let r = bbox_of entry in
    let da = enlargement !box_a r and db = enlargement !box_b r in
    let to_a =
      if da < db then true
      else if db < da then false
      else rect_area !box_a <= rect_area !box_b
    in
    if to_a then begin
      group_a := entry :: !group_a;
      box_a := mbr !box_a r
    end
    else begin
      group_b := entry :: !group_b;
      box_b := mbr !box_b r
    end
  in
  List.iter assign rest;
  (* Strict rebalance: if one side is starved, move entries over (boxes
     are recomputed by the caller from the final groups). *)
  let rebalance () =
    let need = 2 in
    let rec move () =
      if List.length !group_a < need && List.length !group_b > need then begin
        match !group_b with
        | x :: rest_b ->
            group_a := x :: !group_a;
            group_b := rest_b;
            move ()
        | [] -> ()
      end
      else if List.length !group_b < need && List.length !group_a > need then begin
        match !group_a with
        | x :: rest_a ->
            group_b := x :: !group_b;
            group_a := rest_a;
            move ()
        | [] -> ()
      end
    in
    move ()
  in
  rebalance ();
  (!group_a, !group_b)

let entries_bbox bbox_of = function
  | [] -> empty_rect
  | first :: rest -> List.fold_left (fun acc e -> mbr acc (bbox_of e)) (bbox_of first) rest

let recompute_bbox node =
  node.bbox <-
    (match node.body with
    | Leaf entries -> entries_bbox fst entries
    | Branch children -> entries_bbox (fun c -> c.bbox) children)

(* Returns an optional split sibling. *)
let rec insert_node t node r payload =
  touch t node;
  match node.body with
  | Leaf entries ->
      let entries = (r, payload) :: entries in
      if List.length entries <= t.max_entries then begin
        node.body <- Leaf entries;
        recompute_bbox node;
        None
      end
      else begin
        let group_a, group_b = quadratic_split fst entries in
        node.body <- Leaf group_a;
        recompute_bbox node;
        let sibling = { bbox = entries_bbox fst group_b; body = Leaf group_b; page = fresh_page t } in
        Some sibling
      end
  | Branch children ->
      (* Choose the child needing least enlargement (ties: smaller area). *)
      let best =
        List.fold_left
          (fun acc child ->
            let grow = enlargement child.bbox r in
            match acc with
            | None -> Some (child, grow)
            | Some (_, g) when grow < g -> Some (child, grow)
            | Some (c, g) when grow = g && rect_area child.bbox < rect_area c.bbox ->
                Some (child, grow)
            | Some _ -> acc)
          None children
      in
      let child = match best with Some (c, _) -> c | None -> assert false in
      let children =
        match insert_node t child r payload with
        | None -> children
        | Some sibling -> sibling :: children
      in
      if List.length children <= t.max_entries then begin
        node.body <- Branch children;
        recompute_bbox node;
        None
      end
      else begin
        let group_a, group_b = quadratic_split (fun c -> c.bbox) children in
        node.body <- Branch group_a;
        recompute_bbox node;
        let sibling =
          { bbox = entries_bbox (fun c -> c.bbox) group_b;
            body = Branch group_b;
            page = fresh_page t
          }
        in
        Some sibling
      end

let insert t r payload =
  begin
    match insert_node t t.root r payload with
    | None -> ()
    | Some sibling ->
        let root =
          { bbox = mbr t.root.bbox sibling.bbox;
            body = Branch [ t.root; sibling ];
            page = fresh_page t
          }
        in
        t.root <- root
  end;
  t.size <- t.size + 1

let search_with t window keep =
  let out = ref [] in
  let rec walk node =
    touch t node;
    if t.size > 0 && rect_overlaps node.bbox window then
      match node.body with
      | Leaf entries ->
          List.iter (fun (r, v) -> if keep r then out := (r, v) :: !out) entries
      | Branch children -> List.iter walk children
  in
  walk t.root;
  !out

let search t window = search_with t window (fun r -> rect_overlaps r window)

let search_contained t window = search_with t window (fun r -> rect_contains window r)

let size t = t.size

let depth t =
  let rec go node =
    match node.body with
    | Leaf _ -> 1
    | Branch [] -> 1
    | Branch (c :: _) -> 1 + go c
  in
  go t.root

let render t ~show =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rect_str r = Printf.sprintf "[%.1f,%.1f - %.1f,%.1f]" r.x0 r.y0 r.x1 r.y1 in
  let rec walk indent node =
    match node.body with
    | Leaf entries ->
        pr "%sLeaf %s (%d entries)\n" indent (rect_str node.bbox) (List.length entries);
        List.iter (fun (r, v) -> pr "%s  %s %s\n" indent (rect_str r) (show v)) entries
    | Branch children ->
        pr "%sNode %s (%d children)\n" indent (rect_str node.bbox) (List.length children);
        List.iter (walk (indent ^ "  ")) children
  in
  walk "" t.root;
  Buffer.contents buf
