module Oid = Mood_model.Oid
module Value = Mood_model.Value

let oid_key oid = Value.Tuple [ ("class", Value.Int (Oid.class_id oid)); ("slot", Value.Int (Oid.slot oid)) ]

module Binary = struct
  type t = {
    fwd : Oid.t Btree.t;  (* c -> d *)
    bwd : Oid.t Btree.t;  (* d -> c *)
    mutable pairs : int;
  }

  let create ~file_id ~buffer () =
    { fwd = Btree.create ~file_id ~buffer ~key_size:16 ();
      bwd = Btree.create ~file_id:(file_id + 1) ~buffer ~key_size:16 ();
      pairs = 0
    }

  let add t ~c ~d =
    Btree.insert t.fwd ~key:(oid_key c) d;
    Btree.insert t.bwd ~key:(oid_key d) c;
    t.pairs <- t.pairs + 1

  let forward t ~c = Btree.search t.fwd ~key:(oid_key c)

  let backward t ~d = Btree.search t.bwd ~key:(oid_key d)

  let remove t ~c ~d =
    let nf = Btree.delete t.fwd ~key:(oid_key c) (fun o -> Oid.equal o d) in
    let nb = Btree.delete t.bwd ~key:(oid_key d) (fun o -> Oid.equal o c) in
    if nf > 0 then t.pairs <- t.pairs - nf;
    nf > 0 && nb > 0

  let pairs t = t.pairs

  let forward_stats t = Btree.stats t.fwd
  let backward_stats t = Btree.stats t.bwd
end

module Path = struct
  type t = { index : Oid.t Btree.t; path : string list }

  let create ~file_id ~buffer ~path () =
    { index = Btree.create ~file_id ~buffer ~key_size:16 (); path }

  let path t = t.path

  let add t ~terminal ~head = Btree.insert t.index ~key:terminal head

  let probe t ~terminal = Btree.search t.index ~key:terminal

  let probe_range t ~lo ~hi =
    Btree.range t.index ~lo ~hi
    |> List.concat_map snd
    |> List.sort_uniq Oid.compare

  let remove t ~terminal ~head =
    Btree.delete t.index ~key:terminal (fun o -> Oid.equal o head) > 0

  let stats t = Btree.stats t.index
end
