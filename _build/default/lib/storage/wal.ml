type record =
  | Begin of int
  | Commit of int
  | Abort of int
  | Insert of { txn : int; file : int; rid : Heap_file.rid; payload : string }
  | Delete of { txn : int; file : int; rid : Heap_file.rid; before : string }
  | Update of { txn : int; file : int; rid : Heap_file.rid; before : string; after : string }
  | Checkpoint of int list

type t = { mutable log : record list (* newest first *); mutable count : int; mutable persisted : int }

let create () = { log = []; count = 0; persisted = 0 }

let append t record =
  t.log <- record :: t.log;
  t.count <- t.count + 1;
  t.count

let flush t = t.persisted <- t.count

let lose_unpersisted t =
  let lost = t.count - t.persisted in
  if lost > 0 then begin
    let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: rest -> drop (n - 1) rest in
    t.log <- drop lost t.log;
    t.count <- t.persisted
  end;
  lost

let records t = List.rev t.log

let length t = t.count

let txn_of = function
  | Begin id | Commit id | Abort id -> Some id
  | Insert { txn; _ } | Delete { txn; _ } | Update { txn; _ } -> Some txn
  | Checkpoint _ -> None

let replay t ~apply =
  let persisted = records t in
  let committed =
    List.filter_map (function Commit id -> Some id | _ -> None) persisted
  in
  let committed id = List.mem id committed in
  List.iter
    (fun record ->
      match record with
      | Insert { txn; _ } | Delete { txn; _ } | Update { txn; _ } ->
          if committed txn then apply record
      | Begin _ | Commit _ | Abort _ | Checkpoint _ -> ())
    persisted

let undo_records t txn =
  List.filter
    (fun record ->
      match record, txn_of record with
      | (Insert _ | Delete _ | Update _), Some id -> id = txn
      | _, _ -> false)
    t.log
