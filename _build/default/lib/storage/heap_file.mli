(** Heap files of variable-length records.

    One file backs one class extent (and internal structures like the
    catalog). Records are addressed by stable RIDs. The [layout]
    distinguishes the consecutive-page files of Section 5's [SEQCOST]
    from ESM's files-as-B+-trees, for which "the sequential access cost
    of a file is equal to its random access cost" (Section 5) — a
    full scan of a [Btree_file] is charged page-by-page at random-access
    cost. *)

type layout = Consecutive | Btree_file

type rid = { page : int; slot : Page.slot }

type t

val create :
  file_id:int -> buffer:Buffer_pool.t -> ?layout:layout -> page_capacity:int -> unit -> t
(** [page_capacity] is the usable bytes per page (block size minus
    header). *)

val file_id : t -> int

val layout : t -> layout

val insert : t -> string -> rid

val get : t -> rid -> string option
(** Random access: charges one random page read on a buffer miss. *)

val update : t -> rid -> string -> bool
(** In-place when it fits, otherwise delete + reinsert is the caller's
    job; returns [false] in that case or when the RID is dead. *)

val delete : t -> rid -> bool

val scan : t -> f:(rid -> string -> unit) -> unit
(** Full scan in page order, charged according to [layout]. *)

val fold : t -> init:'a -> f:('a -> rid -> string -> 'a) -> 'a

val page_count : t -> int

val record_count : t -> int

val clear : t -> unit
(** Empties the file and drops its buffered pages. *)

val rid_compare : rid -> rid -> int
