type slot = int

type t = {
  capacity : int;
  mutable used : int;
  mutable records : string option array;  (* None = tombstone *)
  mutable next_slot : int;
}

let slot_overhead = 8

let create ~capacity =
  if capacity <= 0 then invalid_arg "Page.create: capacity <= 0";
  { capacity; used = 0; records = Array.make 8 None; next_slot = 0 }

let capacity t = t.capacity

let free_space t = t.capacity - t.used

let record_count t =
  let count = ref 0 in
  for i = 0 to t.next_slot - 1 do
    if t.records.(i) <> None then incr count
  done;
  !count

let fits t n = n + slot_overhead <= free_space t

let ensure_room t =
  if t.next_slot = Array.length t.records then begin
    let fresh = Array.make (2 * Array.length t.records) None in
    Array.blit t.records 0 fresh 0 t.next_slot;
    t.records <- fresh
  end

let insert t payload =
  let cost = String.length payload + slot_overhead in
  if cost > free_space t then None
  else begin
    (* Reuse the first tombstone if any; otherwise extend. *)
    let rec find i = if i >= t.next_slot then None else if t.records.(i) = None then Some i else find (i + 1) in
    let slot =
      match find 0 with
      | Some i -> i
      | None ->
          ensure_room t;
          let i = t.next_slot in
          t.next_slot <- i + 1;
          i
    in
    t.records.(slot) <- Some payload;
    t.used <- t.used + cost;
    Some slot
  end

let get t slot =
  if slot < 0 || slot >= t.next_slot then None else t.records.(slot)

let delete t slot =
  match get t slot with
  | None -> false
  | Some payload ->
      t.records.(slot) <- None;
      t.used <- t.used - (String.length payload + slot_overhead);
      true

let update t slot payload =
  match get t slot with
  | None -> false
  | Some old ->
      let delta = String.length payload - String.length old in
      if delta > free_space t then false
      else begin
        t.records.(slot) <- Some payload;
        t.used <- t.used + delta;
        true
      end

let iter t f =
  for i = 0 to t.next_slot - 1 do
    match t.records.(i) with None -> () | Some payload -> f i payload
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun slot payload -> acc := f !acc slot payload);
  !acc
