type layout = Consecutive | Btree_file

type rid = { page : int; slot : Page.slot }

type t = {
  file_id : int;
  buffer : Buffer_pool.t;
  layout : layout;
  page_capacity : int;
  mutable pages : Page.t array;
  mutable page_count : int;
  mutable record_count : int;
}

let create ~file_id ~buffer ?(layout = Consecutive) ~page_capacity () =
  if page_capacity <= Page.slot_overhead then
    invalid_arg "Heap_file.create: page_capacity too small";
  { file_id; buffer; layout; page_capacity; pages = [||]; page_count = 0; record_count = 0 }

let file_id t = t.file_id

let layout t = t.layout

let page_count t = t.page_count

let record_count t = t.record_count

let add_page t =
  if t.page_count = Array.length t.pages then begin
    let fresh = Array.make (max 8 (2 * Array.length t.pages)) (Page.create ~capacity:t.page_capacity) in
    Array.blit t.pages 0 fresh 0 t.page_count;
    t.pages <- fresh
  end;
  t.pages.(t.page_count) <- Page.create ~capacity:t.page_capacity;
  t.page_count <- t.page_count + 1;
  t.page_count - 1

let insert t payload =
  if String.length payload + Page.slot_overhead > t.page_capacity then
    invalid_arg "Heap_file.insert: record larger than a page";
  let page_index =
    if t.page_count > 0 && Page.fits t.pages.(t.page_count - 1) (String.length payload)
    then t.page_count - 1
    else add_page t
  in
  Buffer_pool.modify t.buffer ~file:t.file_id ~page:page_index;
  match Page.insert t.pages.(page_index) payload with
  | Some slot ->
      t.record_count <- t.record_count + 1;
      { page = page_index; slot }
  | None -> assert false (* fits was checked *)

let valid_page t page = page >= 0 && page < t.page_count

let random_intent t =
  (* Both layouts pay full random cost for point access. *)
  ignore t;
  Buffer_pool.Random

let get t rid =
  if not (valid_page t rid.page) then None
  else begin
    Buffer_pool.access t.buffer ~file:t.file_id ~page:rid.page ~intent:(random_intent t);
    Page.get t.pages.(rid.page) rid.slot
  end

let update t rid payload =
  if not (valid_page t rid.page) then false
  else begin
    Buffer_pool.modify t.buffer ~file:t.file_id ~page:rid.page;
    Page.update t.pages.(rid.page) rid.slot payload
  end

let delete t rid =
  if not (valid_page t rid.page) then false
  else begin
    Buffer_pool.modify t.buffer ~file:t.file_id ~page:rid.page;
    let ok = Page.delete t.pages.(rid.page) rid.slot in
    if ok then t.record_count <- t.record_count - 1;
    ok
  end

let scan_intent t =
  match t.layout with
  | Consecutive -> Buffer_pool.Sequential
  | Btree_file -> Buffer_pool.Random (* ESM: files are B+ trees *)

let scan t ~f =
  let intent = scan_intent t in
  for page = 0 to t.page_count - 1 do
    Buffer_pool.access t.buffer ~file:t.file_id ~page ~intent;
    Page.iter t.pages.(page) (fun slot payload -> f { page; slot } payload)
  done

let fold t ~init ~f =
  let acc = ref init in
  scan t ~f:(fun rid payload -> acc := f !acc rid payload);
  !acc

let clear t =
  t.pages <- [||];
  t.page_count <- 0;
  t.record_count <- 0;
  Buffer_pool.invalidate t.buffer ~file:t.file_id

let rid_compare a b =
  match Int.compare a.page b.page with 0 -> Int.compare a.slot b.slot | c -> c
