lib/storage/hash_index.ml: Array Buffer_pool Hashtbl List Mood_model
