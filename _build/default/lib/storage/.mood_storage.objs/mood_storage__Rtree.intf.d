lib/storage/rtree.mli: Buffer_pool
