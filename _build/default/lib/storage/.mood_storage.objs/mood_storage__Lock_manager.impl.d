lib/storage/lock_manager.ml: Hashtbl Int List Option
