lib/storage/btree.ml: Array Buffer_pool List Mood_model
