lib/storage/extent.ml: Hashtbl Heap_file Int List Mood_model Printf Store String Wal
