lib/storage/lock_manager.mli:
