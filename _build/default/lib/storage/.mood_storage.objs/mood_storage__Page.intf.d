lib/storage/page.mli:
