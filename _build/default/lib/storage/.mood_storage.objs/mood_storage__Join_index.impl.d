lib/storage/join_index.ml: Btree List Mood_model
