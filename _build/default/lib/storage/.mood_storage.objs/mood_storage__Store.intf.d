lib/storage/store.mli: Btree Buffer_pool Disk Hash_index Heap_file Join_index Lock_manager Rtree Wal
