lib/storage/join_index.mli: Btree Buffer_pool Mood_model
