lib/storage/page.ml: Array String
