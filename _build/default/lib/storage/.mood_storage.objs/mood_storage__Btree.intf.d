lib/storage/btree.mli: Buffer_pool Mood_model
