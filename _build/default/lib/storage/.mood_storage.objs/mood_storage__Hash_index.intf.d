lib/storage/hash_index.mli: Buffer_pool Mood_model
