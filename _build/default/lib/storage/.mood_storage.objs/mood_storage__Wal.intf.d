lib/storage/wal.mli: Heap_file
