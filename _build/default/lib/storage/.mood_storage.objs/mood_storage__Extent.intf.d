lib/storage/extent.mli: Heap_file Mood_model Store
