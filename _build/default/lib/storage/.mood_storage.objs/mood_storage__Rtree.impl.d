lib/storage/rtree.ml: Array Buffer Buffer_pool Float Fun List Printf Seq
