lib/storage/wal.ml: Heap_file List
