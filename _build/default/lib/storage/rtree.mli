(** Guttman R-tree over 2-D rectangles.

    MoodView's "graphical indexing tool for the spatial data, i.e.,
    R Trees" (Abstract). Quadratic-split insertion, window (overlap)
    queries, and containment queries. Node visits charge one random
    page read, like the B+-tree. *)

type rect = { x0 : float; y0 : float; x1 : float; y1 : float }
(** Axis-aligned rectangle with [x0 <= x1] and [y0 <= y1]. *)

val rect : x0:float -> y0:float -> x1:float -> y1:float -> rect
(** Raises [Invalid_argument] on a malformed rectangle. *)

val rect_overlaps : rect -> rect -> bool

val rect_contains : rect -> rect -> bool
(** [rect_contains outer inner]. *)

val rect_area : rect -> float

val mbr : rect -> rect -> rect
(** Minimum bounding rectangle of the pair. *)

type 'a t

val create : file_id:int -> buffer:Buffer_pool.t -> ?max_entries:int -> unit -> 'a t
(** [max_entries] per node (default 8, minimum 4); min fill is half. *)

val insert : 'a t -> rect -> 'a -> unit

val search : 'a t -> rect -> (rect * 'a) list
(** All entries whose rectangle overlaps the window. *)

val search_contained : 'a t -> rect -> (rect * 'a) list
(** Entries fully inside the window. *)

val size : 'a t -> int

val depth : 'a t -> int

val render : 'a t -> show:('a -> string) -> string
(** Text rendering of the tree structure (the MoodView "graphical
    indexing tool" panel). *)
