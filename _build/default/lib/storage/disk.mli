(** The simulated disk.

    Substitutes the real disks under the Exodus Storage Manager. The
    point of the simulation is *cost accounting*: every page access is
    charged against the physical parameters of Table 10 (block size [b],
    block transfer time [btt], effective block transfer time [ebt],
    average rotational latency [r], average seek time [s]), so the
    benches can compare the optimizer's analytic predictions
    ([SEQCOST]/[RNDCOST]/...) with "measured" I/O time. Page payloads
    themselves are kept in memory. *)

type params = {
  block_size : int;     (** [B], bytes per page *)
  btt : float;          (** block transfer time, seconds *)
  ebt : float;          (** effective block transfer time, seconds *)
  rot : float;          (** average rotational latency [r], seconds *)
  seek : float;         (** average seek time [s], seconds *)
}

val default_params : params
(** The calibrated parameters of DESIGN.md §4: [B = 4096],
    [btt = 3.34 ms], [ebt = 1.67 ms], [r = 8.33 ms], [s = 12 ms] —
    chosen so that the Table 16 forward-traversal costs are matched. *)

type t

type counters = {
  seeks : int;          (** positioning operations (seek + rotation) *)
  random_reads : int;   (** pages transferred at [btt] *)
  sequential_reads : int; (** pages transferred at [ebt] *)
  writes : int;         (** pages written (charged at [btt] + positioning) *)
  elapsed : float;      (** total modeled time, seconds *)
}

val create : ?params:params -> unit -> t

val params : t -> params

val read_random : t -> unit
(** One random page read: charges [s + r + btt]. *)

val read_sequential : t -> first:bool -> unit
(** One page of a sequential scan: the first page charges [s + r + ebt],
    subsequent pages [ebt] each — so scanning [b] pages costs
    [SEQCOST(b) = s + r + b*ebt]. *)

val write_page : t -> unit
(** One page write: charges [s + r + btt]. *)

val counters : t -> counters

val reset_counters : t -> unit

val elapsed : t -> float
(** [ (counters t).elapsed ]. *)

val with_measure : t -> (unit -> 'a) -> 'a * counters
(** Runs the thunk and returns the counters accumulated *during* it
    (outer accounting is preserved). *)

val pp_counters : Format.formatter -> counters -> unit
