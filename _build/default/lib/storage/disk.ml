type params = {
  block_size : int;
  btt : float;
  ebt : float;
  rot : float;
  seek : float;
}

(* Calibrated so 22000 * (s + r + btt) ~ 520.8 s, the paper's Table 16
   forward-traversal cost for path P2 (see DESIGN.md §4). *)
let default_params =
  { block_size = 4096; btt = 0.0033439; ebt = 0.0016719; rot = 0.00833; seek = 0.012 }

type counters = {
  seeks : int;
  random_reads : int;
  sequential_reads : int;
  writes : int;
  elapsed : float;
}

let zero_counters =
  { seeks = 0; random_reads = 0; sequential_reads = 0; writes = 0; elapsed = 0. }

type t = { params : params; mutable counters : counters }

let create ?(params = default_params) () = { params; counters = zero_counters }

let params t = t.params

let read_random t =
  let p = t.params in
  let c = t.counters in
  t.counters <-
    { c with
      seeks = c.seeks + 1;
      random_reads = c.random_reads + 1;
      elapsed = c.elapsed +. p.seek +. p.rot +. p.btt
    }

let read_sequential t ~first =
  let p = t.params in
  let c = t.counters in
  let position = if first then p.seek +. p.rot else 0. in
  t.counters <-
    { c with
      seeks = (c.seeks + if first then 1 else 0);
      sequential_reads = c.sequential_reads + 1;
      elapsed = c.elapsed +. position +. p.ebt
    }

let write_page t =
  let p = t.params in
  let c = t.counters in
  t.counters <-
    { c with
      seeks = c.seeks + 1;
      writes = c.writes + 1;
      elapsed = c.elapsed +. p.seek +. p.rot +. p.btt
    }

let counters t = t.counters

let reset_counters t = t.counters <- zero_counters

let elapsed t = t.counters.elapsed

let with_measure t thunk =
  let before = t.counters in
  let result = thunk () in
  let after = t.counters in
  let during =
    { seeks = after.seeks - before.seeks;
      random_reads = after.random_reads - before.random_reads;
      sequential_reads = after.sequential_reads - before.sequential_reads;
      writes = after.writes - before.writes;
      elapsed = after.elapsed -. before.elapsed
    }
  in
  (result, during)

let pp_counters ppf c =
  Format.fprintf ppf
    "seeks=%d rnd=%d seq=%d writes=%d elapsed=%.3fs" c.seeks c.random_reads
    c.sequential_reads c.writes c.elapsed
