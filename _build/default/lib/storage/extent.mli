(** Object-level storage for one class extent.

    Wraps a heap file with a slot directory so objects are addressed by
    the slot component of their OID. Values are serialized with the
    model codec; records carry their slot so a scan recovers it. When a
    transaction id is supplied, operations are logged to the store's WAL
    (redo recovery rebuilds extents from the log). *)

type t

val create : store:Store.t -> ?layout:Heap_file.layout -> unit -> t

val heap : t -> Heap_file.t

val insert : t -> ?txn:int -> Mood_model.Value.t -> int
(** Stores an object and returns its fresh slot. *)

val insert_at : t -> ?txn:int -> slot:int -> Mood_model.Value.t -> unit
(** Stores an object under a caller-chosen slot (recovery, restore).
    Raises [Invalid_argument] when the slot is live. *)

val get : t -> int -> Mood_model.Value.t option
(** Random page access. *)

val update : t -> ?txn:int -> slot:int -> Mood_model.Value.t -> bool

val delete : t -> ?txn:int -> int -> bool

val scan : t -> f:(int -> Mood_model.Value.t -> unit) -> unit
(** Sequential scan in storage order. *)

val fold : t -> init:'a -> f:('a -> int -> Mood_model.Value.t -> 'a) -> 'a

val slots : t -> int list
(** Live slots in ascending order, without touching the disk (directory
    is memory-resident, as extent directories are in ESM). *)

val count : t -> int

val page_count : t -> int

val mean_object_size : t -> float
(** Average encoded record size, for [size(C)] statistics. *)

val clear : t -> unit
