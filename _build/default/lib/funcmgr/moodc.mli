(** MoodC: the miniature C-like method-body language.

    MOOD stores "the C++ source after some processing into the class
    hierarchy" and compiles it out-of-band; at run time only the
    compiled code runs. Without a C++ toolchain we reproduce the same
    life cycle with MoodC: a body arrives as source text (e.g.
    [{ return weight * 2.2075; }]), is preprocessed (basic C types are
    replaced by MOOD type classes, exactly the substitution the paper
    performs), parsed once into an AST ("compiled"), and thereafter
    evaluated without reparsing. The Function Manager can also run a
    body in {e interpreted} mode — reparsing at every call — which is
    the strawman the paper's architecture avoids; the benches compare
    the two.

    The language: statements [return e;], [if (e) s else s],
    [while (e) s] (iteration-bounded so a runaway body cannot hang the
    server), blocks, local declarations [int x = e;], assignment
    [x = e;]; expressions
    over integer/float/string/char/bool literals, identifiers (locals,
    then parameters, then attributes of [self]), member access
    [expr.attr] (dereferencing references through the kernel), unary
    [- !], binary [* / % + - < <= > >= == != && ||], and parentheses.
    Evaluation uses [Operand] semantics, so run-time type errors raise
    [Mood_model.Operand.Type_error]. *)

type ast

exception Parse_error of string

val preprocess : string -> string
(** The paper's source processing: occurrences of the basic C++ type
    names ([int], [long], [float], [double], [char], [bool]) are
    replaced with the MOOD type classes ([Integer], [LongInteger],
    [Float], [Char], [Boolean]) at word boundaries. *)

val compile : params:string list -> string -> ast
(** Parses a (preprocessed) body. [params] are the parameter names in
    signature order. Raises [Parse_error]. *)

type env = {
  deref : Mood_model.Oid.t -> Mood_model.Value.t option;
  self : Mood_model.Value.t;
  args : Mood_model.Value.t list;
}

val run : ast -> env -> Mood_model.Value.t
(** Executes the body; the value of the first executed [return] (or
    [Null] if none executes). *)

val interpret : params:string list -> string -> env -> Mood_model.Value.t
(** Parse-and-run in one step: the interpreted mode the paper rejects
    for efficiency. *)
