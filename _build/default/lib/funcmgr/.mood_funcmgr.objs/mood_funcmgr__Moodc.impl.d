lib/funcmgr/moodc.ml: Array Buffer Format Hashtbl Int64 List Mood_model Printf String
