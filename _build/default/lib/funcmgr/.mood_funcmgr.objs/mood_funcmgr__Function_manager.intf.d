lib/funcmgr/function_manager.mli: Mood_catalog Mood_model
