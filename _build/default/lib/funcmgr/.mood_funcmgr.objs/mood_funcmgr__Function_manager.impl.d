lib/funcmgr/function_manager.ml: Format Hashtbl List Mood_catalog Mood_model Mood_storage Moodc Option Printf String
