lib/funcmgr/moodc.mli: Mood_model
