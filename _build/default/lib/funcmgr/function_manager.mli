(** The Function Manager (Section 2).

    "A Function Manager responsible for adding, updating, deleting and
    invoking the member functions of the classes." Member-function
    *signatures* live in the catalog; *bodies* live here, one "shared
    object" container per class mirroring the paper's per-class
    directory of object files. Invocation follows the paper's control
    flow exactly:

    + the signature is constructed from the class name the function is
      applied to and its parameter list;
    + it is located in the catalog (walking the IS-A hierarchy, which is
      how late binding resolves to the most-derived implementation);
    + the owning class's shared-object file is opened (charged as one
      random page read) and the function loaded into memory;
    + the loaded function stays cached until the scope changes.

    Adding or replacing a function preprocesses and "compiles" its
    MoodC source once, taking an exclusive lock on the class's shared
    object for the duration (concurrent invokers of {e other} classes
    are unaffected; the server is never recompiled or restarted).
    Native OCaml closures can be registered too (the compiled-C++
    analogue). Run-time failures — including [Division_by_zero]-style
    "signals" — surface as [Mood_exception] with interpreted-quality
    messages. *)

exception Mood_exception of { class_name : string; function_name : string; message : string }

type t

type body =
  | Moodc of string
      (** source text; preprocessed and compiled at registration *)
  | Native of (deref:(Mood_model.Oid.t -> Mood_model.Value.t option) ->
               self:Mood_model.Value.t ->
               args:Mood_model.Value.t list ->
               Mood_model.Value.t)

val create : catalog:Mood_catalog.Catalog.t -> t

val signature_key :
  class_name:string -> function_name:string -> param_types:Mood_model.Mtype.t list -> string
(** The signature string used to locate functions, built "by using
    class name to which the function is applied and its parameter
    list". *)

val define :
  t ->
  class_name:string ->
  signature:Mood_catalog.Catalog.method_signature ->
  body ->
  unit
(** Registers signature (into the catalog, unless it already exists
    there) and body. Replaces an existing body under the same
    signature; the class's shared object is locked exclusively while
    being rewritten and invalidated from every open scope's cache. *)

val drop : t -> class_name:string -> function_name:string -> unit
(** Removes body and catalog signature. *)

type scope

val enter_scope : t -> scope
(** A program scope; loaded functions are cached per scope and unloaded
    when it exits (the paper: "function is kept in memory until the
    scope changes"). *)

val exit_scope : t -> scope -> unit

val invoke :
  t ->
  scope:scope ->
  self:Mood_model.Oid.t ->
  function_name:string ->
  args:Mood_model.Value.t list ->
  Mood_model.Value.t
(** Late-bound invocation on the object [self]. Raises
    [Mood_exception] when the function cannot be resolved, the argument
    count mismatches, or the body fails at run time. *)

val invoke_on_value :
  t ->
  scope:scope ->
  class_name:string ->
  self:Mood_model.Value.t ->
  function_name:string ->
  args:Mood_model.Value.t list ->
  Mood_model.Value.t
(** Same, for a transient (non-stored) value of a known class. *)

val invoke_interpreted :
  t ->
  self:Mood_model.Oid.t ->
  function_name:string ->
  args:Mood_model.Value.t list ->
  Mood_model.Value.t
(** Strawman mode for the benches: re-preprocess, re-parse and evaluate
    the stored MoodC source on every call (what a full C++ interpreter
    inside the kernel would do). Raises [Mood_exception] for native
    bodies, which cannot be interpreted. *)

val moodc_sources : t -> (string * string * string) list
(** Every MoodC body held in the shared objects, as (class name,
    function name, source text) — what a schema dump replays through
    DEFINE METHOD. Native bodies are not listed (they have no portable
    source). *)

val loads : t -> int
(** Shared-object load count (cache misses across all scopes), for
    tests and benches. *)

val cached : scope -> int
(** Functions currently loaded in this scope. *)
