module Value = Mood_model.Value
module Operand = Mood_model.Operand
module Oid = Mood_model.Oid

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Preprocessing                                                       *)

let type_substitutions =
  [ ("int", "Integer"); ("long", "LongInteger"); ("float", "Float");
    ("double", "Float"); ("char", "Char"); ("bool", "Boolean") ]

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let preprocess source =
  let buf = Buffer.create (String.length source) in
  let n = String.length source in
  let i = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char source.[!i] do
        incr i
      done;
      let word = String.sub source start (!i - start) in
      match List.assoc_opt word type_substitutions with
      | Some replacement -> Buffer.add_string buf replacement
      | None -> Buffer.add_string buf word
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | T_int of int
  | T_float of float
  | T_string of string
  | T_char of char
  | T_ident of string
  | T_punct of string
  | T_eof

let punctuation =
  [ "&&"; "||"; "=="; "!="; "<="; ">="; "{"; "}"; "("; ")"; ";"; ","; "."; "+";
    "-"; "*"; "/"; "%"; "<"; ">"; "="; "!" ]

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = source.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((source.[!i] >= '0' && source.[!i] <= '9') || source.[!i] = '.') do
        incr i
      done;
      let text = String.sub source start (!i - start) in
      if String.contains text '.' then push (T_float (float_of_string text))
      else push (T_int (int_of_string text))
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char source.[!i] do
        incr i
      done;
      push (T_ident (String.sub source start (!i - start)))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && source.[!i] <> '"' do
        incr i
      done;
      if !i >= n then parse_error "unterminated string literal";
      push (T_string (String.sub source start (!i - start)));
      incr i
    end
    else if c = '\'' then begin
      if !i + 2 >= n || source.[!i + 2] <> '\'' then parse_error "bad char literal";
      push (T_char source.[!i + 1]);
      i := !i + 3
    end
    else begin
      let two = if !i + 1 < n then String.sub source !i 2 else "" in
      if List.mem two punctuation then begin
        push (T_punct two);
        i := !i + 2
      end
      else begin
        let one = String.make 1 c in
        if List.mem one punctuation then begin
          push (T_punct one);
          incr i
        end
        else parse_error "unexpected character %C" c
      end
    end
  done;
  List.rev (T_eof :: !tokens)

(* ------------------------------------------------------------------ *)
(* AST                                                                 *)

type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type expr =
  | Lit of Value.t
  | Ident of string
  | Member of expr * string
  | Unary_minus of expr
  | Not of expr
  | Binop of binop * expr * expr

type stmt =
  | Return of expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Block of stmt list
  | Declare of string * string * expr  (* type name, var, init *)
  | Assign of string * expr

type ast = { params : string list; body : stmt list }

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent)                                          *)

type parser_state = { mutable toks : token list }

let peek ps = match ps.toks with [] -> T_eof | t :: _ -> t

let advance ps = match ps.toks with [] -> () | _ :: rest -> ps.toks <- rest

let expect_punct ps p =
  match peek ps with
  | T_punct q when String.equal p q -> advance ps
  | _ -> parse_error "expected %S" p

let rec parse_primary ps =
  match peek ps with
  | T_int v ->
      advance ps;
      Lit (Value.Int v)
  | T_float v ->
      advance ps;
      Lit (Value.Float v)
  | T_string v ->
      advance ps;
      Lit (Value.Str v)
  | T_char v ->
      advance ps;
      Lit (Value.Char v)
  | T_ident "true" ->
      advance ps;
      Lit (Value.Bool true)
  | T_ident "false" ->
      advance ps;
      Lit (Value.Bool false)
  | T_ident name ->
      advance ps;
      parse_members ps (Ident name)
  | T_punct "(" ->
      advance ps;
      let e = parse_expr ps in
      expect_punct ps ")";
      parse_members ps e
  | T_punct "-" ->
      advance ps;
      Unary_minus (parse_primary ps)
  | T_punct "!" ->
      advance ps;
      Not (parse_primary ps)
  | T_punct p -> parse_error "unexpected %S in expression" p
  | T_eof -> parse_error "unexpected end of body"

and parse_members ps e =
  match peek ps with
  | T_punct "." -> begin
      advance ps;
      match peek ps with
      | T_ident field ->
          advance ps;
          parse_members ps (Member (e, field))
      | _ -> parse_error "expected attribute name after '.'"
    end
  | _ -> e

and parse_binary ps level =
  (* Precedence climbing: levels from loosest to tightest. *)
  let table =
    [| [ ("||", Or) ];
       [ ("&&", And) ];
       [ ("==", Eq); ("!=", Ne) ];
       [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ];
       [ ("+", Add); ("-", Sub) ];
       [ ("*", Mul); ("/", Div); ("%", Mod) ]
    |]
  in
  if level >= Array.length table then parse_primary ps
  else begin
    let lhs = ref (parse_binary ps (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek ps with
      | T_punct p -> begin
          match List.assoc_opt p table.(level) with
          | Some op ->
              advance ps;
              let rhs = parse_binary ps (level + 1) in
              lhs := Binop (op, !lhs, rhs)
          | None -> continue := false
        end
      | _ -> continue := false
    done;
    !lhs
  end

and parse_expr ps = parse_binary ps 0

let rec parse_stmt ps =
  match peek ps with
  | T_ident "return" ->
      advance ps;
      let e = parse_expr ps in
      expect_punct ps ";";
      Return e
  | T_ident "while" ->
      advance ps;
      expect_punct ps "(";
      let cond = parse_expr ps in
      expect_punct ps ")";
      While (cond, parse_stmt ps)
  | T_ident "if" ->
      advance ps;
      expect_punct ps "(";
      let cond = parse_expr ps in
      expect_punct ps ")";
      let then_branch = parse_stmt ps in
      let else_branch =
        match peek ps with
        | T_ident "else" ->
            advance ps;
            Some (parse_stmt ps)
        | _ -> None
      in
      If (cond, then_branch, else_branch)
  | T_punct "{" ->
      advance ps;
      let rec loop acc =
        match peek ps with
        | T_punct "}" ->
            advance ps;
            List.rev acc
        | T_eof -> parse_error "unterminated block"
        | _ -> loop (parse_stmt ps :: acc)
      in
      Block (loop [])
  | T_ident type_name
    when List.exists
           (fun (_, mood) -> String.equal mood type_name)
           type_substitutions
         || String.equal type_name "String" -> begin
      advance ps;
      match peek ps with
      | T_ident var -> begin
          advance ps;
          expect_punct ps "=";
          let init = parse_expr ps in
          expect_punct ps ";";
          Declare (type_name, var, init)
        end
      | _ -> parse_error "expected variable name after type %s" type_name
    end
  | T_ident name -> begin
      advance ps;
      match peek ps with
      | T_punct "=" ->
          advance ps;
          let e = parse_expr ps in
          expect_punct ps ";";
          Assign (name, e)
      | _ -> parse_error "expected '=' after identifier %s" name
    end
  | T_punct p -> parse_error "unexpected %S at statement start" p
  | T_eof -> parse_error "unexpected end of body"
  | T_int _ | T_float _ | T_string _ | T_char _ ->
      parse_error "statement cannot start with a literal"

let compile ~params source =
  let ps = { toks = tokenize source } in
  let rec loop acc =
    match peek ps with
    | T_eof -> List.rev acc
    | _ -> loop (parse_stmt ps :: acc)
  in
  { params; body = loop [] }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

type env = {
  deref : Oid.t -> Value.t option;
  self : Value.t;
  args : Value.t list;
}

exception Returned of Value.t

type frame = (string, Value.t) Hashtbl.t

(* Pairwise lookup tolerant of an argument-count mismatch (checked by
   the Function Manager before the call). *)
let rec assoc_param params args name =
  match params, args with
  | p :: _, a :: _ when String.equal p name -> Some a
  | _ :: ps, _ :: rest -> assoc_param ps rest name
  | _, _ -> None

let lookup env frame ast name =
  match Hashtbl.find_opt frame name with
  | Some v -> v
  | None -> begin
      (* Parameters shadow attributes of self, as in C++. *)
      match assoc_param ast.params env.args name with
      | Some v -> v
      | None -> begin
          match Value.tuple_get env.self name with
          | Some v -> v
          | None ->
              raise
                (Operand.Type_error
                   (Printf.sprintf "unbound identifier %s in method body" name))
        end
    end

let binop_eval op a b =
  let open Operand in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> div a b
  | Mod -> modulo a b
  | Lt -> compare_op `Lt a b
  | Le -> compare_op `Le a b
  | Gt -> compare_op `Gt a b
  | Ge -> compare_op `Ge a b
  | Eq -> compare_op `Eq a b
  | Ne -> compare_op `Ne a b
  | And -> logical_and a b
  | Or -> logical_or a b

let rec eval_expr env frame ast e =
  match e with
  | Lit v -> v
  | Ident name -> lookup env frame ast name
  | Member (e, field) -> begin
      let base = eval_expr env frame ast e in
      let target =
        match base with
        | Value.Ref oid -> begin
            match env.deref oid with
            | Some v -> v
            | None ->
                raise (Operand.Type_error (Printf.sprintf "dangling reference %s" (Oid.to_string oid)))
          end
        | other -> other
      in
      match Value.tuple_get target field with
      | Some v -> v
      | None -> raise (Operand.Type_error (Printf.sprintf "no attribute %s" field))
    end
  | Unary_minus e -> begin
      let v = eval_expr env frame ast e in
      match v with
      | Value.Int i -> Value.Int (-i)
      | Value.Long l -> Value.Long (Int64.neg l)
      | Value.Float f -> Value.Float (-.f)
      | _ -> raise (Operand.Type_error "unary minus on non-numeric value")
    end
  | Not e ->
      Operand.to_value (Operand.logical_not (Operand.of_value (eval_expr env frame ast e)))
  | Binop (op, l, r) ->
      let a = Operand.of_value (eval_expr env frame ast l) in
      let b = Operand.of_value (eval_expr env frame ast r) in
      Operand.to_value (binop_eval op a b)

let rec exec_stmt env frame ast = function
  | Return e -> raise (Returned (eval_expr env frame ast e))
  | If (cond, then_branch, else_branch) ->
      if Value.truthy (eval_expr env frame ast cond) then exec_stmt env frame ast then_branch
      else begin
        match else_branch with
        | Some s -> exec_stmt env frame ast s
        | None -> ()
      end
  | While (cond, body) ->
      (* Loops are bounded: a method body that spins 10^7 iterations is
         a runaway, reported as the kernel's Exception rather than a
         hung server. *)
      let fuel = ref 10_000_000 in
      while Value.truthy (eval_expr env frame ast cond) do
        decr fuel;
        if !fuel <= 0 then
          raise (Operand.Type_error "while loop exceeded the iteration budget");
        exec_stmt env frame ast body
      done
  | Block stmts -> List.iter (exec_stmt env frame ast) stmts
  | Declare (_, var, init) -> Hashtbl.replace frame var (eval_expr env frame ast init)
  | Assign (var, e) -> Hashtbl.replace frame var (eval_expr env frame ast e)

let run ast env =
  let frame : frame = Hashtbl.create 8 in
  try
    List.iter (exec_stmt env frame ast) ast.body;
    Value.Null
  with Returned v -> v

let interpret ~params source env = run (compile ~params source) env
