module Value = Mood_model.Value
module Mtype = Mood_model.Mtype
module Oid = Mood_model.Oid
module Catalog = Mood_catalog.Catalog
module Store = Mood_storage.Store
module Lock = Mood_storage.Lock_manager

exception Mood_exception of { class_name : string; function_name : string; message : string }

let mood_exception ~class_name ~function_name fmt =
  Format.kasprintf
    (fun message -> raise (Mood_exception { class_name; function_name; message }))
    fmt

type native_fn =
  deref:(Oid.t -> Value.t option) ->
  self:Value.t ->
  args:Value.t list ->
  Value.t

type body = Moodc of string | Native of native_fn

type compiled = C_moodc of Moodc.ast * string (* ast + original source *) | C_native of native_fn

type shared_object = {
  class_name : string;
  mutable functions : (string * compiled) list; (* signature key -> compiled *)
  mutable version : int;
}

type t = {
  catalog : Catalog.t;
  shared_objects : (string, shared_object) Hashtbl.t;
  mutable load_count : int;
  mutable next_scope : int;
}

type scope = {
  id : int;
  cache : (string, compiled * int) Hashtbl.t; (* signature key -> (fn, version) *)
}

let create ~catalog =
  { catalog; shared_objects = Hashtbl.create 16; load_count = 0; next_scope = 0 }

let signature_key ~class_name ~function_name ~param_types =
  Printf.sprintf "%s::%s(%s)" class_name function_name
    (String.concat "," (List.map Mtype.to_string param_types))

let shared_object t class_name =
  match Hashtbl.find_opt t.shared_objects class_name with
  | Some so -> so
  | None ->
      let so = { class_name; functions = []; version = 0 } in
      Hashtbl.replace t.shared_objects class_name so;
      so

let so_resource class_name = "shared_object:" ^ class_name

(* Exclusive lock around a shared-object rebuild: "the shared library of
   the class will be unavailable only during the time it takes to write
   the new function". *)
let with_so_lock t class_name f =
  let locks = Store.locks (Catalog.store t.catalog) in
  let txn = Lock.begin_txn locks in
  match Lock.acquire locks txn (so_resource class_name) Lock.Exclusive with
  | Lock.Granted ->
      let finish () = Lock.release_all locks txn in
      begin
        try
          let result = f () in
          finish ();
          result
        with e ->
          finish ();
          raise e
      end
  | Lock.Would_block | Lock.Deadlock ->
      Lock.release_all locks txn;
      mood_exception ~class_name ~function_name:"<define>"
        "shared object of %s is locked by another writer" class_name

let compile_body ~class_name ~function_name ~params body =
  match body with
  | Native fn -> C_native fn
  | Moodc source -> begin
      let processed = Moodc.preprocess source in
      try C_moodc (Moodc.compile ~params processed, source)
      with Moodc.Parse_error msg ->
        mood_exception ~class_name ~function_name "compilation failed: %s" msg
    end

let define t ~class_name ~(signature : Catalog.method_signature) body =
  let key =
    signature_key ~class_name ~function_name:signature.Catalog.method_name
      ~param_types:(List.map snd signature.Catalog.parameters)
  in
  let params = List.map fst signature.Catalog.parameters in
  let compiled =
    compile_body ~class_name ~function_name:signature.Catalog.method_name ~params body
  in
  with_so_lock t class_name (fun () ->
      let so = shared_object t class_name in
      (* Register the signature in the catalog unless already declared. *)
      let declared =
        List.exists
          (fun (m : Catalog.method_signature) ->
            String.equal m.Catalog.method_name signature.Catalog.method_name
            && List.length m.Catalog.parameters = List.length signature.Catalog.parameters
            && List.for_all2
                 (fun (_, a) (_, b) -> Mtype.equal a b)
                 m.Catalog.parameters signature.Catalog.parameters)
          (Catalog.methods t.catalog class_name)
      in
      if not declared then Catalog.add_method t.catalog ~class_name signature;
      so.functions <- (key, compiled) :: List.remove_assoc key so.functions;
      so.version <- so.version + 1)

let drop t ~class_name ~function_name =
  with_so_lock t class_name (fun () ->
      let so = shared_object t class_name in
      let prefix = Printf.sprintf "%s::%s(" class_name function_name in
      let survivors =
        List.filter
          (fun (key, _) -> not (String.length key >= String.length prefix
                                && String.equal (String.sub key 0 (String.length prefix)) prefix))
          so.functions
      in
      if List.length survivors = List.length so.functions then
        mood_exception ~class_name ~function_name "function not found in shared object";
      so.functions <- survivors;
      so.version <- so.version + 1;
      Catalog.drop_method t.catalog ~class_name ~method_name:function_name)

let enter_scope t =
  let id = t.next_scope in
  t.next_scope <- id + 1;
  { id; cache = Hashtbl.create 8 }

let exit_scope _t scope = Hashtbl.reset scope.cache

(* Resolve the owning class of a method: the first class in MRO order
   (self, then superclasses left-to-right, recursively) whose shared
   object defines the signature key for that class. *)
let rec resolve t class_name function_name nargs =
  let try_class cls =
    match Catalog.find_class t.catalog cls with
    | None -> None
    | Some _ ->
        let so = shared_object t cls in
        let found =
          List.find_opt
            (fun (key, _) ->
              let prefix = Printf.sprintf "%s::%s(" cls function_name in
              String.length key >= String.length prefix
              && String.equal (String.sub key 0 (String.length prefix)) prefix)
            so.functions
        in
        Option.map (fun (key, compiled) -> (cls, key, compiled, so.version)) found
  in
  match try_class class_name with
  | Some hit -> Some hit
  | None ->
      let rec first_some = function
        | [] -> None
        | super :: rest -> begin
            match resolve t super function_name nargs with
            | Some hit -> Some hit
            | None -> first_some rest
          end
      in
      first_some (Catalog.superclasses t.catalog class_name)

let signature_of t class_name function_name =
  Catalog.find_method t.catalog ~class_name ~method_name:function_name

let load t ~scope ~class_name ~function_name ~nargs =
  match resolve t class_name function_name nargs with
  | None ->
      mood_exception ~class_name ~function_name
        "signature not found in CATALOG for class %s" class_name
  | Some (owner, key, compiled, version) -> begin
      (* Scope cache: opened shared objects stay loaded until the scope
         changes; a rebuilt shared object (newer version) is reloaded. *)
      match Hashtbl.find_opt scope.cache key with
      | Some (cached, v) when v = version -> cached
      | Some _ | None ->
          t.load_count <- t.load_count + 1;
          ignore owner;
          Hashtbl.replace scope.cache key (compiled, version);
          compiled
    end

let check_arity t ~class_name ~function_name ~args =
  match signature_of t class_name function_name with
  | Some m ->
      let expected = List.length m.Catalog.parameters in
      if expected <> List.length args then
        mood_exception ~class_name ~function_name "expected %d argument(s), got %d"
          expected (List.length args)
  | None -> ()

let run_compiled t ~class_name ~function_name compiled ~self ~args =
  let deref oid = Catalog.get_object t.catalog oid in
  try
    match compiled with
    | C_native fn -> fn ~deref ~self ~args
    | C_moodc (ast, _) -> Moodc.run ast { Moodc.deref; self; args }
  with
  | Mood_model.Operand.Type_error msg ->
      mood_exception ~class_name ~function_name "run-time error: %s" msg
  | Division_by_zero ->
      mood_exception ~class_name ~function_name "run-time error: division by zero"
  | Failure msg -> mood_exception ~class_name ~function_name "signal: %s" msg

let invoke_on_value t ~scope ~class_name ~self ~function_name ~args =
  check_arity t ~class_name ~function_name ~args;
  let compiled =
    load t ~scope ~class_name ~function_name ~nargs:(List.length args)
  in
  run_compiled t ~class_name ~function_name compiled ~self ~args

let invoke t ~scope ~self ~function_name ~args =
  match Catalog.class_of_object t.catalog self with
  | None ->
      mood_exception ~class_name:"?" ~function_name "object %s has no class"
        (Oid.to_string self)
  | Some info -> begin
      match Catalog.get_object t.catalog self with
      | None ->
          mood_exception ~class_name:info.Catalog.class_name ~function_name
            "object %s not found" (Oid.to_string self)
      | Some value ->
          invoke_on_value t ~scope ~class_name:info.Catalog.class_name ~self:value
            ~function_name ~args
    end

let invoke_interpreted t ~self ~function_name ~args =
  match Catalog.class_of_object t.catalog self with
  | None ->
      mood_exception ~class_name:"?" ~function_name "object %s has no class"
        (Oid.to_string self)
  | Some info -> begin
      let class_name = info.Catalog.class_name in
      match resolve t class_name function_name (List.length args) with
      | None ->
          mood_exception ~class_name ~function_name "signature not found in CATALOG for class %s"
            class_name
      | Some (_, _, C_native _, _) ->
          mood_exception ~class_name ~function_name "native function cannot be interpreted"
      | Some (owner, _, C_moodc (_, source), _) -> begin
          match Catalog.get_object t.catalog self with
          | None ->
              mood_exception ~class_name ~function_name "object %s not found"
                (Oid.to_string self)
          | Some value ->
              let params =
                match signature_of t class_name function_name with
                | Some m -> List.map fst m.Catalog.parameters
                | None -> []
              in
              ignore owner;
              let deref oid = Catalog.get_object t.catalog oid in
              let env = { Moodc.deref; self = value; args } in
              begin
                try Moodc.interpret ~params (Moodc.preprocess source) env with
                | Mood_model.Operand.Type_error msg ->
                    mood_exception ~class_name ~function_name "run-time error: %s" msg
                | Moodc.Parse_error msg ->
                    mood_exception ~class_name ~function_name "parse error: %s" msg
              end
        end
    end

let moodc_sources t =
  Hashtbl.fold
    (fun class_name so acc ->
      List.fold_left
        (fun acc (key, compiled) ->
          match compiled with
          | C_native _ -> acc
          | C_moodc (_, source) -> begin
              (* key = "Class::name(types)": recover the function name *)
              match String.index_opt key ':' with
              | Some i when i + 2 <= String.length key ->
                  let rest = String.sub key (i + 2) (String.length key - i - 2) in
                  let name =
                    match String.index_opt rest '(' with
                    | Some j -> String.sub rest 0 j
                    | None -> rest
                  in
                  (class_name, name, source) :: acc
              | Some _ | None -> acc
            end)
        acc so.functions)
    t.shared_objects []
  |> List.sort compare

let loads t = t.load_count

let cached scope = Hashtbl.length scope.cache
