(** Run-time collections of the MOOD algebra (Section 3.2).

    Operands are one of four kinds: an {b Extent} (objects, possibly
    transient tuple values without identity, e.g. [Project] output), a
    {b Set} of object identifiers, a {b List} of object identifiers, or
    a {b Named Object}. The operator tables (Tables 1–7) dictate the
    kind of every result; the implementations in {!Ops} follow them
    cell by cell. *)

type item = { oid : Mood_model.Oid.t option; value : Mood_model.Value.t }
(** An extent element: a stored object carries its OID; a transient
    value (projection result) does not. *)

type t =
  | Extent of item list
  | Set of Mood_model.Oid.t list  (** canonical: sorted, duplicate-free *)
  | List of Mood_model.Oid.t list
  | Named of Mood_model.Oid.t

type kind = K_extent | K_set | K_list | K_named

val kind : t -> kind

val kind_name : kind -> string
(** ["Extent"], ["Set"], ["List"], ["Named Obj."] — the table
    spellings. *)

val set_of : Mood_model.Oid.t list -> t
(** Canonicalizes. *)

val of_objects : (Mood_model.Oid.t * Mood_model.Value.t) list -> t
(** An extent of stored objects. *)

val of_values : Mood_model.Value.t list -> t
(** An extent of transient values. *)

val item_of_object : Mood_model.Oid.t -> Mood_model.Value.t -> item

val oids : t -> Mood_model.Oid.t list
(** The identifiers present (transient extent items contribute none). *)

val cardinality : t -> int

val is_empty : t -> bool

(** Evaluation context: how the algebra reaches stored objects. *)
type ctx = {
  deref : Mood_model.Oid.t -> Mood_model.Value.t option;
  type_of : Mood_model.Oid.t -> int;
      (** the paper's [TypeId(o)]; -1 when unknown *)
}

val items : ctx -> t -> item list
(** Materializes any collection as extent items, dereferencing Set/List
    members and the named object. Dangling references are dropped. *)

val pp : Format.formatter -> t -> unit
