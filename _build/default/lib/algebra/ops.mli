(** The MOOD algebra operators (Section 3.2), with the return-type
    discipline of Tables 1–7.

    General operators take or return single objects; collection
    operators consume whole collections; conversion operators move
    between kinds. Predicates and comparison keys arrive as OCaml
    functions — the executor compiles MOODSQL predicates down to
    these. *)

open Collection

exception Not_applicable of string
(** Raised where a table cell says "not applicable" (e.g.
    [DupElim] on a Set) or an argument kind is outside the operator's
    domain. *)

(** {1 General operators} *)

val obj_id : item -> Mood_model.Oid.t option
(** [ObjId(o)]. *)

val type_id : ctx -> item -> int
(** [TypeId(o)]: the creating class for stored objects, -1 for
    transient values. *)

val deref : ctx -> Mood_model.Oid.t -> Mood_model.Value.t option
(** [Deref(oid)]. *)

val bind : (string, t) Hashtbl.t -> t -> string -> t
(** [Bind(arg, aName)]: registers [arg] under [aName] in the naming
    environment and returns it. *)

(** {1 Collection operators} *)

val select : ctx -> t -> (item -> bool) -> t
(** Table 1: Extent→Extent, Set→Set, List→List, Named→Named (an empty
    Set when the named object fails the predicate or is dangling). *)

val project : ctx -> t -> string list -> t
(** Tuple collections only ([Not_applicable] otherwise): the extent of
    the tuple values projected onto the attribute list; Set/List
    arguments are dereferenced first. *)

val join :
  ctx ->
  t -> t ->
  (item -> item -> bool) ->
  left_name:string ->
  right_name:string ->
  t
(** Table 2. When either argument is an Extent the result is an Extent
    of binding tuples [<left_name: l, right_name: r>] (stored objects
    appear as references, transient values inline). For Set/List/Named
    combinations the result keeps the identifiers of the *left*
    argument that join (semi-join), with the kind given by Table 2. *)

val partition : ctx -> t -> (item -> Mood_model.Value.t) -> (Mood_model.Value.t * t) list
(** [Partition]: groups by key; each group has the kind of the
    argument. *)

val sort : ctx -> t -> ?run_length:int -> (item -> item -> int) -> t
(** [Sort] via heap sort with merging, no duplicate elimination. Sorted
    Set stays a Set of ordered identifiers, List a List, Extent an
    Extent (Section 3.2). *)

val dup_elim : ctx -> t -> t
(** Table 3: Set is [Not_applicable]; List gives ordered distinct
    identifiers; Extent eliminates duplicates under deep equality. *)

val union : ctx -> t -> t -> t
val intersection : ctx -> t -> t -> t
val difference : ctx -> t -> t -> t
(** Table 4: arguments Set or List ([Not_applicable] otherwise);
    List×List yields List (union = concatenation), anything involving a
    Set yields Set. *)

(** {1 Conversion operators} *)

val as_set : t -> t
(** Table 5. *)

val as_list : t -> t
(** Table 5; an Extent's transient items contribute nothing (no
    identifiers). *)

val as_extent : ctx -> t -> t
(** Table 6: Set/List only. *)

val unnest : ctx -> t -> attr:string -> t
(** Table 7: tuple collections only. Rows multiply per element of the
    set/list/reference-valued attribute [attr]; rows whose [attr] is
    empty disappear (1NF unnest). *)

val nest : ctx -> t -> attr:string -> t
(** Inverse of [Unnest]: groups rows agreeing on every attribute except
    [attr] and collects the [attr] values into a set. *)

val flatten : ctx -> t -> t
(** Converts a set/list of collections (or of objects) into the Set of
    object identifiers of the leaves. Always a Set. *)
