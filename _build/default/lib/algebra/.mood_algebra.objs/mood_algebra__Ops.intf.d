lib/algebra/ops.mli: Collection Hashtbl Mood_model
