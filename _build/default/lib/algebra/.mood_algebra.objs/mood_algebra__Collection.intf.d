lib/algebra/collection.mli: Format Mood_model
