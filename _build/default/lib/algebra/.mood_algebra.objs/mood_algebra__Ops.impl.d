lib/algebra/ops.ml: Collection Format Hashtbl List Mood_model Mood_util Option String
