lib/algebra/collection.ml: Format List Mood_model Option
