module Oid = Mood_model.Oid
module Value = Mood_model.Value
module Heap = Mood_util.Heap
open Collection

exception Not_applicable of string

let not_applicable fmt = Format.kasprintf (fun m -> raise (Not_applicable m)) fmt

(* ------------------------------------------------------------------ *)
(* General operators                                                   *)

let obj_id (item : item) = item.oid

let type_id ctx (item : item) =
  match item.oid with Some oid -> ctx.type_of oid | None -> -1

let deref ctx oid = ctx.deref oid

let bind env arg name =
  Hashtbl.replace env name arg;
  arg

(* ------------------------------------------------------------------ *)
(* Select (Table 1)                                                    *)

let select ctx t pred =
  match t with
  | Extent items -> Extent (List.filter pred items)
  | Set os ->
      Set
        (List.filter
           (fun oid ->
             match ctx.deref oid with
             | Some value -> pred { oid = Some oid; value }
             | None -> false)
           os)
  | List os ->
      List
        (List.filter
           (fun oid ->
             match ctx.deref oid with
             | Some value -> pred { oid = Some oid; value }
             | None -> false)
           os)
  | Named oid -> begin
      match ctx.deref oid with
      | Some value when pred { oid = Some oid; value } -> Named oid
      | Some _ | None -> Set []
    end

(* ------------------------------------------------------------------ *)
(* Project                                                             *)

let project ctx t attrs =
  let rows = items ctx t in
  let projected =
    List.filter_map
      (fun (item : item) ->
        match item.value with
        | Value.Tuple fields ->
            Some
              (Value.Tuple
                 (List.filter_map
                    (fun attr ->
                      Option.map (fun v -> (attr, v)) (List.assoc_opt attr fields))
                    attrs))
        | Value.Null | Value.Int _ | Value.Long _ | Value.Float _ | Value.Str _
        | Value.Char _ | Value.Bool _ | Value.Set _ | Value.List _ | Value.Ref _ ->
            None)
      rows
  in
  if List.length projected <> List.length rows then
    not_applicable "Project requires a tuple collection";
  of_values projected

(* ------------------------------------------------------------------ *)
(* Join (Table 2)                                                      *)

let binding_value (item : item) =
  match item.oid with Some oid -> Value.Ref oid | None -> item.value

(* Combine two binding tuples: an item that is already a binding tuple
   (transient tuple of named references) is spliced, so multi-way joins
   accumulate flat <v, c, d, ...> rows. *)
let combine left_name left right_name right =
  let fields_of name (item : item) =
    match item.oid, item.value with
    | None, Value.Tuple fields when List.for_all (fun (n, _) -> n <> "") fields ->
        fields
    | _, _ -> [ (name, binding_value item) ]
  in
  let merged = fields_of left_name left @ fields_of right_name right in
  (* Later bindings of the same name shadow earlier ones. *)
  let rec dedup seen = function
    | [] -> []
    | (n, v) :: rest ->
        if List.mem n seen then dedup seen rest else (n, v) :: dedup (n :: seen) rest
  in
  { oid = None; value = Value.Tuple (dedup [] merged) }

(* The paper's [join_method] argument selects among the optimizer's
   four physical strategies; at algebra level those differ only in how
   the operands were produced, so the operator itself is logical. The
   executor realizes the physical methods (see Mood_executor). *)
let join ctx left right pred ~left_name ~right_name =
  let lk = kind left and rk = kind right in
  let left_items = items ctx left and right_items = items ctx right in
  match lk, rk with
  | K_extent, _ | _, K_extent ->
      let rows =
        List.concat_map
          (fun l ->
            List.filter_map
              (fun r -> if pred l r then Some (combine left_name l right_name r) else None)
              right_items)
          left_items
      in
      Extent rows
  | (K_set | K_list | K_named), (K_set | K_list | K_named) ->
      (* Semi-join keeping left identifiers; kind per Table 2. *)
      let survivors =
        List.filter_map
          (fun (l : item) ->
            if List.exists (fun r -> pred l r) right_items then l.oid else None)
          left_items
      in
      begin
        match lk, rk with
        | K_named, K_named -> begin
            match survivors with [ o ] -> Named o | _ -> Set []
          end
        | K_list, (K_list | K_named) -> List survivors
        | K_named, K_list -> List survivors
        | (K_set | K_list | K_named), (K_set | K_list | K_named) -> set_of survivors
        | K_extent, _ | _, K_extent -> assert false
      end

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)

let rebuild_like original member_items =
  match original with
  | Extent _ -> Extent member_items
  | Set _ -> set_of (List.filter_map (fun (i : item) -> i.oid) member_items)
  | List _ -> List (List.filter_map (fun (i : item) -> i.oid) member_items)
  | Named _ -> begin
      match member_items with
      | [ { oid = Some o; _ } ] -> Named o
      | _ -> set_of (List.filter_map (fun (i : item) -> i.oid) member_items)
    end

let partition ctx t key =
  let rows = items ctx t in
  let groups : (Value.t * item list ref) list ref = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match List.find_opt (fun (k', _) -> Value.equal k k') !groups with
      | Some (_, members) -> members := item :: !members
      | None -> groups := (k, ref [ item ]) :: !groups)
    rows;
  List.rev_map (fun (k, members) -> (k, rebuild_like t (List.rev !members))) !groups

(* ------------------------------------------------------------------ *)
(* Sort: heap sort with merging                                        *)

let sort ctx t ?(run_length = 1024) cmp =
  let sorted = Heap.sort_with_runs ~cmp ~run_length (items ctx t) in
  match t with
  | Extent _ -> Extent sorted
  | Set _ -> Set (List.filter_map (fun (i : item) -> i.oid) sorted)
  | List _ -> List (List.filter_map (fun (i : item) -> i.oid) sorted)
  | Named _ -> t

(* ------------------------------------------------------------------ *)
(* DupElim (Table 3)                                                   *)

let dup_elim ctx t =
  match t with
  | Set _ -> not_applicable "DupElim on a Set (already duplicate-free)"
  | List os -> List (List.sort_uniq Oid.compare os)
  | Named _ -> t
  | Extent items_ ->
      let deep_eq a b =
        Value.deep_equal ~deref:ctx.deref a.value b.value
      in
      let rec keep seen = function
        | [] -> List.rev seen
        | item :: rest ->
            if List.exists (deep_eq item) seen then keep seen rest
            else keep (item :: seen) rest
      in
      Extent (keep [] items_)

(* ------------------------------------------------------------------ *)
(* Union / Intersection / Difference (Table 4)                         *)

let require_set_or_list name t =
  match t with
  | Set os | List os -> os
  | Extent _ | Named _ -> not_applicable "%s requires Set or List arguments" name

let both_lists a b = match a, b with List _, List _ -> true | _, _ -> false

let union _ctx a b =
  let xa = require_set_or_list "Union" a and xb = require_set_or_list "Union" b in
  if both_lists a b then List (xa @ xb) (* array concatenation *)
  else set_of (xa @ xb)

let intersection _ctx a b =
  let xa = require_set_or_list "Intersection" a
  and xb = require_set_or_list "Intersection" b in
  let result = List.filter (fun o -> List.exists (Oid.equal o) xb) xa in
  if both_lists a b then List result else set_of result

let difference _ctx a b =
  let xa = require_set_or_list "Difference" a
  and xb = require_set_or_list "Difference" b in
  let result = List.filter (fun o -> not (List.exists (Oid.equal o) xb)) xa in
  if both_lists a b then List result else set_of result

(* ------------------------------------------------------------------ *)
(* Conversions (Tables 5-7)                                            *)

let as_set t =
  match t with
  | Extent items -> set_of (List.filter_map (fun (i : item) -> i.oid) items)
  | Set _ -> t
  | List os -> set_of os
  | Named o -> Set [ o ]

let as_list t =
  match t with
  | Extent items -> List (List.filter_map (fun (i : item) -> i.oid) items)
  | Set os -> List os
  | List _ -> t
  | Named o -> List [ o ]

let as_extent ctx t =
  match t with
  | Set _ | List _ -> Extent (items ctx t)
  | Extent _ | Named _ -> not_applicable "asExtent requires a Set or a List"

let element_values ctx v =
  match v with
  | Value.Set xs | Value.List xs -> xs
  | Value.Ref oid -> begin
      match ctx.deref oid with Some _ -> [ v ] | None -> []
    end
  | Value.Null -> []
  | Value.Int _ | Value.Long _ | Value.Float _ | Value.Str _ | Value.Char _
  | Value.Bool _ | Value.Tuple _ ->
      [ v ]

let unnest ctx t ~attr =
  let rows = items ctx t in
  let unnest_row (item : item) =
    match item.value with
    | Value.Tuple fields -> begin
        match List.assoc_opt attr fields with
        | None -> not_applicable "Unnest: no attribute %s" attr
        | Some v ->
            List.map
              (fun element ->
                { oid = None;
                  value =
                    Value.Tuple
                      (List.map
                         (fun (n, old) ->
                           (n, if String.equal n attr then element else old))
                         fields)
                })
              (element_values ctx v)
      end
    | Value.Null | Value.Int _ | Value.Long _ | Value.Float _ | Value.Str _
    | Value.Char _ | Value.Bool _ | Value.Set _ | Value.List _ | Value.Ref _ ->
        not_applicable "Unnest requires a tuple collection"
  in
  Extent (List.concat_map unnest_row rows)

let nest ctx t ~attr =
  let rows = items ctx t in
  let key (item : item) =
    match item.value with
    | Value.Tuple fields -> Value.Tuple (List.filter (fun (n, _) -> n <> attr) fields)
    | _ -> not_applicable "Nest requires a tuple collection"
  in
  let groups = partition ctx (Extent rows) key in
  let rebuild (k, group) =
    let members =
      match group with
      | Extent items ->
          List.filter_map
            (fun (i : item) ->
              match i.value with
              | Value.Tuple fields -> List.assoc_opt attr fields
              | _ -> None)
            items
      | Set _ | List _ | Named _ -> []
    in
    match k with
    | Value.Tuple fields ->
        { oid = None; value = Value.Tuple (fields @ [ (attr, Value.set members) ]) }
    | _ -> assert false
  in
  Extent (List.map rebuild groups)

let flatten _ctx t =
  let rec oids_of_value v =
    match v with
    | Value.Ref oid -> [ oid ]
    | Value.Set xs | Value.List xs -> List.concat_map oids_of_value xs
    | Value.Tuple fields -> List.concat_map (fun (_, v) -> oids_of_value v) fields
    | Value.Null | Value.Int _ | Value.Long _ | Value.Float _ | Value.Str _
    | Value.Char _ | Value.Bool _ ->
        []
  in
  match t with
  | Set _ | List _ -> set_of (oids t)
  | Named o -> Set [ o ]
  | Extent items_ ->
      set_of
        (List.concat_map
           (fun (i : item) ->
             match i.oid with Some o -> [ o ] | None -> oids_of_value i.value)
           items_)
