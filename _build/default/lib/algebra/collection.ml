module Oid = Mood_model.Oid
module Value = Mood_model.Value

type item = { oid : Oid.t option; value : Value.t }

type t =
  | Extent of item list
  | Set of Oid.t list
  | List of Oid.t list
  | Named of Oid.t

type kind = K_extent | K_set | K_list | K_named

let kind = function
  | Extent _ -> K_extent
  | Set _ -> K_set
  | List _ -> K_list
  | Named _ -> K_named

let kind_name = function
  | K_extent -> "Extent"
  | K_set -> "Set"
  | K_list -> "List"
  | K_named -> "Named Obj."

let set_of oids = Set (List.sort_uniq Oid.compare oids)

let item_of_object oid value = { oid = Some oid; value }

let of_objects objects = Extent (List.map (fun (oid, value) -> item_of_object oid value) objects)

let of_values values = Extent (List.map (fun value -> { oid = None; value }) values)

let oids = function
  | Extent items -> List.filter_map (fun i -> i.oid) items
  | Set os | List os -> os
  | Named o -> [ o ]

let cardinality = function
  | Extent items -> List.length items
  | Set os | List os -> List.length os
  | Named _ -> 1

let is_empty t = cardinality t = 0

type ctx = { deref : Oid.t -> Value.t option; type_of : Oid.t -> int }

let items ctx = function
  | Extent items -> items
  | Set os | List os ->
      List.filter_map
        (fun oid -> Option.map (fun value -> { oid = Some oid; value }) (ctx.deref oid))
        os
  | Named oid -> begin
      match ctx.deref oid with
      | Some value -> [ { oid = Some oid; value } ]
      | None -> []
    end

let pp ppf t =
  match t with
  | Extent items ->
      Format.fprintf ppf "Extent[%d]{%a}" (List.length items)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf i -> Value.pp ppf i.value))
        items
  | Set os ->
      Format.fprintf ppf "Set{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Oid.pp)
        os
  | List os ->
      Format.fprintf ppf "List[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Oid.pp)
        os
  | Named o -> Format.fprintf ppf "Named(%a)" Oid.pp o
