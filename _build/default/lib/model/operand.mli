(** [OperandDataType]: run-time typed operands for the MOODSQL
    interpreter (Section 2).

    The kernel interprets arithmetic and Boolean expressions over
    operands whose data types are only known at run time. This module
    reproduces the paper's operator overloading: [+ - * / %] over
    numeric operands with type promotion, comparisons, and
    [AND OR NOT], with type checking and conversion of results
    performed at run time. A type violation raises [Type_error] (the
    kernel's Exception class turns these into interpreted-style error
    messages even for compiled functions). *)

exception Type_error of string

type data_type = Int16 | Int32 | Int64 | Double | Text | Char_t | Bool_t

type t
(** A typed operand: a declared [data_type] plus a current value. *)

val declare : data_type -> t
(** An operand of the given type holding that type's zero value — the
    paper's [OperandDataType x(INT16)]. *)

val of_value : Value.t -> t
(** Wraps a model value, inferring the tightest data type. Raises
    [Type_error] on values with no operand counterpart (tuples, sets,
    lists, references, null). *)

val assign : t -> t -> t
(** [assign target source]: stores [source]'s value into an operand of
    [target]'s declared type, converting (and truncating floats to
    integer types) as the paper's [z = ...] example does; the result's
    type is cast to the declared type of the assignment target. Raises
    [Type_error] for impossible conversions (e.g. text to Int16) and
    [Type_error] on Int16 overflow. *)

val data_type : t -> data_type

val to_value : t -> Value.t

val add : t -> t -> t
(** Numeric addition; on text/char operands, concatenation. *)

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Integer division when both operands are integral; float division
    otherwise. Raises [Type_error] on division by zero. *)

val modulo : t -> t -> t
(** Integral operands only. *)

val compare_op : [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ] -> t -> t -> t
(** Comparison with numeric promotion; strings and chars compare
    lexicographically; mixed incomparable types raise [Type_error].
    Result is a [Bool_t] operand. *)

val logical_and : t -> t -> t
val logical_or : t -> t -> t
val logical_not : t -> t
(** Boolean operands only; [Type_error] otherwise. *)

val pp : Format.formatter -> t -> unit

val data_type_name : data_type -> string
