(** Object identifiers.

    Every MOOD object lives in some class extent; its identifier pairs
    the identifier of the class that *created* it (objects of a subclass
    appear in superclass extents by IS-A, but keep their creating class)
    with a slot number unique within that class. *)

type t = private { class_id : int; slot : int }

val make : class_id:int -> slot:int -> t
(** Raises [Invalid_argument] on negative components. *)

val class_id : t -> int

val slot : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["<class:slot>"], e.g. [<3:17>]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
