type basic =
  | Integer
  | Float
  | Long_integer
  | String of int
  | Char
  | Boolean

type t =
  | Basic of basic
  | Tuple of (string * t) list
  | Set of t
  | List of t
  | Reference of string

let basic_equal a b =
  match a, b with
  | Integer, Integer | Float, Float | Long_integer, Long_integer
  | Char, Char | Boolean, Boolean ->
      true
  | String n, String m -> n = m
  | (Integer | Float | Long_integer | String _ | Char | Boolean), _ -> false

let rec equal a b =
  match a, b with
  | Basic x, Basic y -> basic_equal x y
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (n, t) (m, u) -> String.equal n m && equal t u) xs ys
  | Set x, Set y | List x, List y -> equal x y
  | Reference x, Reference y -> String.equal x y
  | (Basic _ | Tuple _ | Set _ | List _ | Reference _), _ -> false

let pp_basic ppf = function
  | Integer -> Format.pp_print_string ppf "Integer"
  | Float -> Format.pp_print_string ppf "Float"
  | Long_integer -> Format.pp_print_string ppf "LongInteger"
  | String n -> Format.fprintf ppf "String(%d)" n
  | Char -> Format.pp_print_string ppf "Char"
  | Boolean -> Format.pp_print_string ppf "Boolean"

let rec pp ppf = function
  | Basic b -> pp_basic ppf b
  | Tuple attrs ->
      let pp_attr ppf (name, ty) = Format.fprintf ppf "%s %a" name pp ty in
      Format.fprintf ppf "TUPLE (%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_attr)
        attrs
  | Set ty -> Format.fprintf ppf "SET (%a)" pp ty
  | List ty -> Format.fprintf ppf "LIST (%a)" pp ty
  | Reference cls -> Format.fprintf ppf "REFERENCE (%s)" cls

let to_string t = Format.asprintf "%a" pp t

let basic_size = function
  | Integer -> 4
  | Float -> 8
  | Long_integer -> 8
  | String n -> n
  | Char -> 1
  | Boolean -> 1

let rec byte_size = function
  | Basic b -> basic_size b
  | Tuple attrs -> List.fold_left (fun acc (_, ty) -> acc + byte_size ty) 0 attrs
  | Set _ | List _ -> 64
  | Reference _ -> 8

let is_atomic = function
  | Basic _ -> true
  | Tuple _ | Set _ | List _ | Reference _ -> false

let attribute t name =
  match t with
  | Tuple attrs -> List.assoc_opt name attrs
  | Basic _ | Set _ | List _ | Reference _ -> None

let rec referenced_class = function
  | Reference cls -> Some cls
  | Set ty | List ty -> referenced_class ty
  | Basic _ | Tuple _ -> None

let default_value_spec = function
  | Basic Integer -> `Int
  | Basic Long_integer -> `Long
  | Basic Float -> `Float
  | Basic (String _) -> `String
  | Basic Char -> `Char
  | Basic Boolean -> `Bool
  | Tuple _ -> `Tuple
  | Set _ -> `Set
  | List _ -> `List
  | Reference _ -> `Ref
