type t =
  | Null
  | Int of int
  | Long of int64
  | Float of float
  | Str of string
  | Char of char
  | Bool of bool
  | Tuple of (string * t) list
  | Set of t list
  | List of t list
  | Ref of Oid.t

(* Constructor rank for ordering values of different shapes. Numerics
   share a rank so they compare by numeric value. *)
let rank = function
  | Null -> 0
  | Int _ | Long _ | Float _ -> 1
  | Str _ -> 2
  | Char _ -> 3
  | Bool _ -> 4
  | Tuple _ -> 5
  | Set _ -> 6
  | List _ -> 7
  | Ref _ -> 8

let numeric = function
  | Int i -> Some (float_of_int i)
  | Long l -> Some (Int64.to_float l)
  | Float f -> Some f
  | Null | Str _ | Char _ | Bool _ | Tuple _ | Set _ | List _ | Ref _ -> None

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Int _, Int _ | Long _, Long _ | Float _, Float _
  | Int _, Long _ | Long _, Int _
  | Int _, Float _ | Float _, Int _
  | Long _, Float _ | Float _, Long _ -> begin
      match numeric a, numeric b with
      | Some x, Some y -> Float.compare x y
      | _, _ -> assert false
    end
  | Str x, Str y -> String.compare x y
  | Char x, Char y -> Stdlib.Char.compare x y
  | Bool x, Bool y -> Stdlib.Bool.compare x y
  | Tuple xs, Tuple ys ->
      compare_assoc xs ys
  | Set xs, Set ys | List xs, List ys -> compare_lists xs ys
  | Ref x, Ref y -> Oid.compare x y
  | ( ( Null | Int _ | Long _ | Float _ | Str _ | Char _ | Bool _ | Tuple _
      | Set _ | List _ | Ref _ ),
      _ ) ->
      Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

and compare_assoc xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (n, x) :: xs', (m, y) :: ys' ->
      let c = String.compare n m in
      if c <> 0 then c
      else
        let c = compare x y in
        if c <> 0 then c else compare_assoc xs' ys'

let equal a b = compare a b = 0

let set elements = Set (List.sort_uniq compare elements)

module Pair_set = Set.Make (struct
  type t = Oid.t * Oid.t

  let compare (a, b) (c, d) =
    match Oid.compare a c with 0 -> Oid.compare b d | r -> r
end)

let deep_equal ~deref a b =
  (* [assumed] carries pairs of OIDs currently being compared: on a
     cycle, the coinductive reading of deep equality presumes them
     equal. *)
  let rec go assumed a b =
    match a, b with
    | Ref x, Ref y ->
        if Oid.equal x y then true
        else if Pair_set.mem (x, y) assumed then true
        else begin
          match deref x, deref y with
          | Some vx, Some vy -> go (Pair_set.add (x, y) assumed) vx vy
          | _, _ -> false
        end
    | Tuple xs, Tuple ys ->
        List.length xs = List.length ys
        && List.for_all2
             (fun (n, x) (m, y) -> String.equal n m && go assumed x y)
             xs ys
    | Set xs, Set ys | List xs, List ys ->
        List.length xs = List.length ys && List.for_all2 (go assumed) xs ys
    | ( ( Null | Int _ | Long _ | Float _ | Str _ | Char _ | Bool _ | Tuple _
        | Set _ | List _ | Ref _ ),
        _ ) ->
        equal a b
  in
  go Pair_set.empty a b

let rec type_check v ty =
  match v, ty with
  | Null, _ -> true
  | Int _, Mtype.Basic Mtype.Integer -> true
  | Long _, Mtype.Basic Mtype.Long_integer -> true
  | Float _, Mtype.Basic Mtype.Float -> true
  | Str s, Mtype.Basic (Mtype.String n) -> String.length s <= n
  | Char _, Mtype.Basic Mtype.Char -> true
  | Bool _, Mtype.Basic Mtype.Boolean -> true
  | Tuple fields, Mtype.Tuple attrs ->
      List.length fields = List.length attrs
      && List.for_all2
           (fun (n, v) (m, t) -> String.equal n m && type_check v t)
           fields attrs
  | Set xs, Mtype.Set t | List xs, Mtype.List t ->
      List.for_all (fun x -> type_check x t) xs
  | Ref _, Mtype.Reference _ -> true
  | ( ( Int _ | Long _ | Float _ | Str _ | Char _ | Bool _ | Tuple _ | Set _
      | List _ | Ref _ ),
      _ ) ->
      false

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int i -> Format.pp_print_int ppf i
  | Long l -> Format.fprintf ppf "%LdL" l
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Char c -> Format.fprintf ppf "%C" c
  | Bool b -> Format.pp_print_bool ppf b
  | Tuple fields ->
      let pp_field ppf (n, v) = Format.fprintf ppf "%s: %a" n pp v in
      Format.fprintf ppf "<%a>" (pp_comma pp_field) fields
  | Set xs -> Format.fprintf ppf "{%a}" (pp_comma pp) xs
  | List xs -> Format.fprintf ppf "[%a]" (pp_comma pp) xs
  | Ref oid -> Oid.pp ppf oid

and pp_comma : 'a. (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit =
 fun pp_item ppf xs ->
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_item ppf xs

let to_string v = Format.asprintf "%a" pp v

let tuple_get v name =
  match v with
  | Tuple fields -> List.assoc_opt name fields
  | Null | Int _ | Long _ | Float _ | Str _ | Char _ | Bool _ | Set _ | List _
  | Ref _ ->
      None

let tuple_set v name fresh =
  match v with
  | Tuple fields when List.mem_assoc name fields ->
      Tuple (List.map (fun (n, old) -> (n, if String.equal n name then fresh else old)) fields)
  | _ -> invalid_arg (Printf.sprintf "Value.tuple_set: no attribute %S" name)

let as_float = numeric

let truthy = function
  | Bool b -> b
  | Null | Int _ | Long _ | Float _ | Str _ | Char _ | Tuple _ | Set _
  | List _ | Ref _ ->
      invalid_arg "Value.truthy: predicate did not evaluate to a Boolean"
