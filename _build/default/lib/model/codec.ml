(* Tags *)
let tag_null = '\000'
and tag_int = '\001'
and tag_long = '\002'
and tag_float = '\003'
and tag_str = '\004'
and tag_char = '\005'
and tag_bool = '\006'
and tag_tuple = '\007'
and tag_set = '\008'
and tag_list = '\009'
and tag_ref = '\010'

let add_int64 buf v =
  for byte = 7 downto 0 do
    let shift = 8 * byte in
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xFFL)))
  done

let add_int buf v = add_int64 buf (Int64.of_int v)

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let rec add_value buf v =
  match v with
  | Value.Null -> Buffer.add_char buf tag_null
  | Value.Int i ->
      Buffer.add_char buf tag_int;
      add_int buf i
  | Value.Long l ->
      Buffer.add_char buf tag_long;
      add_int64 buf l
  | Value.Float f ->
      Buffer.add_char buf tag_float;
      add_int64 buf (Int64.bits_of_float f)
  | Value.Str s ->
      Buffer.add_char buf tag_str;
      add_string buf s
  | Value.Char c ->
      Buffer.add_char buf tag_char;
      Buffer.add_char buf c
  | Value.Bool b ->
      Buffer.add_char buf tag_bool;
      Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Tuple fields ->
      Buffer.add_char buf tag_tuple;
      add_int buf (List.length fields);
      List.iter
        (fun (name, v) ->
          add_string buf name;
          add_value buf v)
        fields
  | Value.Set xs ->
      Buffer.add_char buf tag_set;
      add_int buf (List.length xs);
      List.iter (add_value buf) xs
  | Value.List xs ->
      Buffer.add_char buf tag_list;
      add_int buf (List.length xs);
      List.iter (add_value buf) xs
  | Value.Ref oid ->
      Buffer.add_char buf tag_ref;
      add_int buf (Oid.class_id oid);
      add_int buf (Oid.slot oid)

let encode v =
  let buf = Buffer.create 64 in
  add_value buf v;
  Buffer.contents buf

let encoded_size v = String.length (encode v)

type cursor = { data : string; mutable pos : int }

let read_char cur =
  if cur.pos >= String.length cur.data then failwith "Codec.decode: truncated";
  let c = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let read_int64 cur =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (read_char cur)))
  done;
  !v

let read_int cur = Int64.to_int (read_int64 cur)

let read_string cur =
  let n = read_int cur in
  if n < 0 || cur.pos + n > String.length cur.data then
    failwith "Codec.decode: bad string length";
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

(* Reads [n] items left to right; List.init's evaluation order is not a
   contract we want to depend on for a stateful cursor. *)
let read_n n read cur =
  let rec loop i acc = if i = n then List.rev acc else loop (i + 1) (read cur :: acc) in
  loop 0 []

let rec read_value cur =
  let tag = read_char cur in
  if tag = tag_null then Value.Null
  else if tag = tag_int then Value.Int (read_int cur)
  else if tag = tag_long then Value.Long (read_int64 cur)
  else if tag = tag_float then Value.Float (Int64.float_of_bits (read_int64 cur))
  else if tag = tag_str then Value.Str (read_string cur)
  else if tag = tag_char then Value.Char (read_char cur)
  else if tag = tag_bool then Value.Bool (read_char cur <> '\000')
  else if tag = tag_tuple then begin
    let n = read_int cur in
    let read_field cur =
      let name = read_string cur in
      let v = read_value cur in
      (name, v)
    in
    Value.Tuple (read_n n read_field cur)
  end
  else if tag = tag_set then begin
    let n = read_int cur in
    Value.Set (read_n n read_value cur)
  end
  else if tag = tag_list then begin
    let n = read_int cur in
    Value.List (read_n n read_value cur)
  end
  else if tag = tag_ref then begin
    let class_id = read_int cur in
    let slot = read_int cur in
    Value.Ref (Oid.make ~class_id ~slot)
  end
  else failwith (Printf.sprintf "Codec.decode: unknown tag %d" (Char.code tag))

let decode s =
  let cur = { data = s; pos = 0 } in
  let v = read_value cur in
  if cur.pos <> String.length s then failwith "Codec.decode: trailing bytes";
  v
