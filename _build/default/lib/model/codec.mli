(** Binary (de)serialization of values for the storage manager.

    Records on slotted pages are byte strings; this codec is the
    boundary. The encoding is self-describing (a tag byte per value),
    length-prefixed for variable-size data, and round-trip exact. *)

val encode : Value.t -> string

val decode : string -> Value.t
(** Raises [Failure] on malformed input. *)

val encoded_size : Value.t -> int
(** [String.length (encode v)] without materializing the string. *)
