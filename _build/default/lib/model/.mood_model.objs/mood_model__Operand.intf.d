lib/model/operand.mli: Format Value
