lib/model/mtype.ml: Format List String
