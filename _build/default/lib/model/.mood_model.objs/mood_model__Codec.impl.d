lib/model/codec.ml: Buffer Char Int64 List Oid Printf String Value
