lib/model/value.ml: Float Format Int Int64 List Mtype Oid Printf Set Stdlib String
