lib/model/codec.mli: Value
