lib/model/value.mli: Format Mtype Oid
