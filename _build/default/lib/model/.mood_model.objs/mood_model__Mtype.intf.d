lib/model/mtype.mli: Format
