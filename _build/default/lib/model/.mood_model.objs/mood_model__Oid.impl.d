lib/model/oid.ml: Format Int Map Set
