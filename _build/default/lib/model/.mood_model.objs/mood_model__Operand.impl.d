lib/model/operand.ml: Bool Char Float Format Int64 Printf String Value
