(** Run-time values of the MOOD data model.

    Values of *types* have copy semantics; *objects* (instances of
    classes) are identified by OID and referenced through [Ref]. Sets
    are kept canonical (sorted, duplicate-free under shallow
    comparison); lists preserve order and duplicates. *)

type t =
  | Null
  | Int of int
  | Long of int64
  | Float of float
  | Str of string
  | Char of char
  | Bool of bool
  | Tuple of (string * t) list
  | Set of t list  (** canonical: sorted and deduplicated *)
  | List of t list
  | Ref of Oid.t

val set : t list -> t
(** Builds a canonical [Set] from arbitrary elements. *)

val compare : t -> t -> int
(** Total order used by sorting and set canonicalization: shallow —
    references compare by OID, not by referent. Values of different
    shapes order by constructor. Numeric values compare cross-kind by
    numeric value ([Int 2 = Long 2L = Float 2.]). *)

val equal : t -> t -> bool
(** Shallow equality: [compare a b = 0]. *)

val deep_equal : deref:(Oid.t -> t option) -> t -> t -> bool
(** Deep equality check used by [DupElim] on extents (Table 3):
    references are chased through [deref]; cycles are handled by
    coinductive assumption (two objects already under comparison are
    presumed equal). An unresolvable reference is only equal to the same
    OID. *)

val type_check : t -> Mtype.t -> bool
(** Structural conformance of a value to a declared type. [Null]
    conforms to every type; references conform to any [Reference]
    (class-level checking needs the catalog and happens there). String
    values longer than the declared length do not conform. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val tuple_get : t -> string -> t option
(** Attribute projection on [Tuple] values; [None] elsewhere. *)

val tuple_set : t -> string -> t -> t
(** Functional update of a tuple attribute. Raises [Invalid_argument] if
    the value is not a tuple declaring the attribute. *)

val as_float : t -> float option
(** Numeric view of [Int]/[Long]/[Float]; [None] elsewhere. *)

val truthy : t -> bool
(** Boolean view: [Bool b] is [b]; everything else raises
    [Invalid_argument] — predicates must be Boolean-typed. *)
