type t = { class_id : int; slot : int }

let make ~class_id ~slot =
  if class_id < 0 || slot < 0 then invalid_arg "Oid.make: negative component";
  { class_id; slot }

let class_id t = t.class_id

let slot t = t.slot

let compare a b =
  match Int.compare a.class_id b.class_id with
  | 0 -> Int.compare a.slot b.slot
  | c -> c

let equal a b = compare a b = 0

let hash t = (t.class_id * 1000003) lxor t.slot

let pp ppf t = Format.fprintf ppf "<%d:%d>" t.class_id t.slot

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
