exception Type_error of string

type data_type = Int16 | Int32 | Int64 | Double | Text | Char_t | Bool_t

type payload =
  | P_int of int64
  | P_float of float
  | P_text of string
  | P_char of char
  | P_bool of bool

type t = { dtype : data_type; payload : payload }

let data_type t = t.dtype

let data_type_name = function
  | Int16 -> "INT16"
  | Int32 -> "INT32"
  | Int64 -> "INT64"
  | Double -> "DOUBLE"
  | Text -> "TEXT"
  | Char_t -> "CHAR"
  | Bool_t -> "BOOLEAN"

let type_error fmt = Format.kasprintf (fun msg -> raise (Type_error msg)) fmt

let zero_of = function
  | Int16 | Int32 | Int64 -> P_int 0L
  | Double -> P_float 0.
  | Text -> P_text ""
  | Char_t -> P_char '\000'
  | Bool_t -> P_bool false

let declare dtype = { dtype; payload = zero_of dtype }

let int_bounds = function
  | Int16 -> Some (-32768L, 32767L)
  | Int32 -> Some (-2147483648L, 2147483647L)
  | Int64 -> None
  | Double | Text | Char_t | Bool_t -> None

let check_int_range dtype v =
  match int_bounds dtype with
  | Some (lo, hi) when v < lo || v > hi ->
      type_error "integer %Ld out of range for %s" v (data_type_name dtype)
  | Some _ | None -> v

let of_value = function
  | Value.Int i ->
      let v = Int64.of_int i in
      let dtype = if v >= -32768L && v <= 32767L then Int16
        else if v >= -2147483648L && v <= 2147483647L then Int32
        else Int64
      in
      { dtype; payload = P_int v }
  | Value.Long l -> { dtype = Int64; payload = P_int l }
  | Value.Float f -> { dtype = Double; payload = P_float f }
  | Value.Str s -> { dtype = Text; payload = P_text s }
  | Value.Char c -> { dtype = Char_t; payload = P_char c }
  | Value.Bool b -> { dtype = Bool_t; payload = P_bool b }
  | (Value.Null | Value.Tuple _ | Value.Set _ | Value.List _ | Value.Ref _) as v ->
      type_error "value %s has no operand data type" (Value.to_string v)

let to_value t =
  match t.payload with
  | P_int v -> begin
      match t.dtype with
      | Int64 -> Value.Long v
      | Int16 | Int32 | Double | Text | Char_t | Bool_t -> Value.Int (Int64.to_int v)
    end
  | P_float f -> Value.Float f
  | P_text s -> Value.Str s
  | P_char c -> Value.Char c
  | P_bool b -> Value.Bool b

let assign target source =
  let payload =
    match target.dtype, source.payload with
    | (Int16 | Int32 | Int64), P_int v -> P_int (check_int_range target.dtype v)
    | (Int16 | Int32 | Int64), P_float f ->
        P_int (check_int_range target.dtype (Int64.of_float f))
    | Double, P_int v -> P_float (Int64.to_float v)
    | Double, P_float f -> P_float f
    | Text, P_text s -> P_text s
    | Char_t, P_char c -> P_char c
    | Bool_t, P_bool b -> P_bool b
    | _, _ ->
        type_error "cannot assign %s value to %s operand"
          (data_type_name source.dtype) (data_type_name target.dtype)
  in
  { dtype = target.dtype; payload }

(* Numeric promotion: the result type of an arithmetic operation is the
   wider of the operand types; Double dominates. *)
let promote a b =
  match a, b with
  | Double, _ | _, Double -> Double
  | Int64, _ | _, Int64 -> Int64
  | Int32, _ | _, Int32 -> Int32
  | Int16, Int16 -> Int16
  | (Text | Char_t | Bool_t), _ | _, (Text | Char_t | Bool_t) ->
      type_error "non-numeric operand in arithmetic expression"

let as_int = function
  | { payload = P_int v; _ } -> v
  | { dtype; _ } -> type_error "%s operand is not integral" (data_type_name dtype)

let as_num = function
  | { payload = P_int v; _ } -> Int64.to_float v
  | { payload = P_float f; _ } -> f
  | { dtype; _ } -> type_error "%s operand is not numeric" (data_type_name dtype)

let arith name int_op float_op a b =
  let dtype = promote a.dtype b.dtype in
  match dtype with
  | Double -> { dtype; payload = P_float (float_op (as_num a) (as_num b)) }
  | Int16 | Int32 | Int64 ->
      let v = int_op (as_int a) (as_int b) in
      (* Results widen rather than trap: Int16 arithmetic that overflows
         promotes, mirroring the paper's run-time conversion of results. *)
      let dtype =
        match int_bounds dtype with
        | Some (lo, hi) when v < lo || v > hi ->
            if v >= -2147483648L && v <= 2147483647L then Int32 else Int64
        | Some _ | None -> dtype
      in
      { dtype; payload = P_int v }
  | Text | Char_t | Bool_t ->
      type_error "operator %s undefined for %s" name (data_type_name dtype)

(* "+" doubles as string concatenation, as MoodView's C++ would do
   with an overloaded operator. *)
let add a b =
  match a.payload, b.payload with
  | P_text x, P_text y -> { dtype = Text; payload = P_text (x ^ y) }
  | P_text x, P_char y -> { dtype = Text; payload = P_text (x ^ String.make 1 y) }
  | P_char x, P_text y -> { dtype = Text; payload = P_text (String.make 1 x ^ y) }
  | _, _ -> arith "+" Int64.add ( +. ) a b
let sub a b = arith "-" Int64.sub ( -. ) a b
let mul a b = arith "*" Int64.mul ( *. ) a b

let div a b =
  let integral = function
    | { dtype = Int16 | Int32 | Int64; _ } -> true
    | { dtype = Double | Text | Char_t | Bool_t; _ } -> false
  in
  if integral a && integral b then begin
    if as_int b = 0L then type_error "division by zero";
    arith "/" Int64.div ( /. ) a b
  end
  else begin
    if as_num b = 0. then type_error "division by zero";
    { dtype = Double; payload = P_float (as_num a /. as_num b) }
  end

let modulo a b =
  let x = as_int a and y = as_int b in
  if y = 0L then type_error "modulo by zero";
  { dtype = promote a.dtype b.dtype; payload = P_int (Int64.rem x y) }

let compare_operands a b =
  match a.payload, b.payload with
  | P_int _, P_int _ | P_float _, P_float _ | P_int _, P_float _ | P_float _, P_int _ ->
      Float.compare (as_num a) (as_num b)
  | P_text x, P_text y -> String.compare x y
  | P_char x, P_char y -> Char.compare x y
  | P_text x, P_char y -> String.compare x (String.make 1 y)
  | P_char x, P_text y -> String.compare (String.make 1 x) y
  | P_bool x, P_bool y -> Bool.compare x y
  | _, _ ->
      type_error "cannot compare %s with %s" (data_type_name a.dtype)
        (data_type_name b.dtype)

let compare_op op a b =
  let c = compare_operands a b in
  let result =
    match op with
    | `Eq -> c = 0
    | `Ne -> c <> 0
    | `Lt -> c < 0
    | `Le -> c <= 0
    | `Gt -> c > 0
    | `Ge -> c >= 0
  in
  { dtype = Bool_t; payload = P_bool result }

let as_bool = function
  | { payload = P_bool b; _ } -> b
  | { dtype; _ } ->
      type_error "%s operand in Boolean expression" (data_type_name dtype)

let logical_and a b = { dtype = Bool_t; payload = P_bool (as_bool a && as_bool b) }
let logical_or a b = { dtype = Bool_t; payload = P_bool (as_bool a || as_bool b) }
let logical_not a = { dtype = Bool_t; payload = P_bool (not (as_bool a)) }

let pp ppf t =
  let value =
    match t.payload with
    | P_int v -> Int64.to_string v
    | P_float f -> string_of_float f
    | P_text s -> Printf.sprintf "%S" s
    | P_char c -> Printf.sprintf "%C" c
    | P_bool b -> string_of_bool b
  in
  Format.fprintf ppf "%s:%s" (data_type_name t.dtype) value
