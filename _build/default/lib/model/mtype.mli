(** The MOOD type system.

    Basic types are Integer, Float, LongInteger, String, Char and
    Boolean; complex types are built by recursive application of the
    Tuple, Set, List and Reference constructors (Section 2 / 3.1).
    References name the target *class*; the catalog resolves the name to
    a class id at definition time. *)

type basic =
  | Integer
  | Float
  | Long_integer
  | String of int  (** declared maximum length, e.g. [String(32)] *)
  | Char
  | Boolean

type t =
  | Basic of basic
  | Tuple of (string * t) list  (** attribute name, attribute type *)
  | Set of t
  | List of t
  | Reference of string  (** target class name *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints MOODSQL DDL syntax: [Integer], [String(32)],
    [REFERENCE (Company)], [SET (Integer)], [TUPLE (a Integer, ...)]. *)

val to_string : t -> string

val byte_size : t -> int
(** Declared storage footprint of an instance, used for [size(C)]
    statistics: Integer/Float/Long have fixed widths (4, 8, 8), String
    its declared length, Char/Boolean 1, Reference 8 (an OID), Tuple the
    sum of its attributes, Set/List a 64-byte descriptor (elements live
    out-of-line). *)

val is_atomic : t -> bool
(** True for basic types — the attributes on which "immediate"
    selections and conventional indexes are defined. *)

val attribute : t -> string -> t option
(** [attribute t name] is the type of attribute [name] if [t] is a tuple
    type that declares it. *)

val referenced_class : t -> string option
(** The class named by a [Reference] (looking through [Set]/[List] of
    references, as path expressions do). *)

val default_value_spec : t -> [ `Int | `Long | `Float | `String | `Char | `Bool | `Tuple | `Set | `List | `Ref ]
(** Coarse kind used by generic display and codecs. *)
