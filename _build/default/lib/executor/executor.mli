(** Plan execution.

    Evaluates optimizer plans against the stored database, realizing
    each join with the physical method the optimizer chose — forward
    traversal and hash-partition joins chase stored references and
    fetch target objects page by page (charging the simulated disk),
    backward traversal scans and compares, and binary-join-index joins
    probe the index. The clause order of Figure 7.1 and the operator
    order of Figure 7.2 are realized by the plan shape the optimizer
    emits (selections below joins below projection below union). *)

type result = {
  rows : Eval.row list;       (** binding rows, one per result element *)
  projected : Mood_model.Value.t list option;
      (** the SELECT-list tuples when the plan projects; [None] for
          bare binding results *)
}

val run : Eval.env -> Mood_optimizer.Plan.node -> result

val run_query : Eval.env -> Mood_optimizer.Dicts.env -> Mood_sql.Ast.query -> result
(** Optimize then run. *)

val result_values : result -> Mood_model.Value.t list
(** The user-facing rows: projected tuples, or for bare binding rows
    the tuple of each variable's value (references for stored
    objects). *)

val result_oids : result -> Mood_model.Oid.t list
(** Object identifiers of single-variable results (e.g. [SELECT v]) —
    duplicates removed, in first-appearance order. *)
