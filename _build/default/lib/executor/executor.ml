module Ast = Mood_sql.Ast
module Value = Mood_model.Value
module Oid = Mood_model.Oid
module Catalog = Mood_catalog.Catalog
module Collection = Mood_algebra.Collection
module Plan = Mood_optimizer.Plan
module Dicts = Mood_optimizer.Dicts
module Optimizer = Mood_optimizer.Optimizer
module Join_cost = Mood_cost.Join_cost
module Heap = Mood_util.Heap
module Btree = Mood_storage.Btree
module Hash_index = Mood_storage.Hash_index

type result = { rows : Eval.row list; projected : Value.t list option }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let item_of env oid =
  Option.map
    (fun value -> { Collection.oid = Some oid; value })
    (Catalog.get_object env.Eval.catalog oid)

let refs_of_field = function
  | Value.Ref o -> [ o ]
  | Value.Set xs | Value.List xs ->
      List.filter_map (function Value.Ref o -> Some o | _ -> None) xs
  | Value.Null | Value.Int _ | Value.Long _ | Value.Float _ | Value.Str _
  | Value.Char _ | Value.Bool _ | Value.Tuple _ ->
      []

(* A "simple" right side of a join: one class access with an optional
   residual predicate, which pointer-chasing joins can evaluate lazily
   per fetched object instead of pre-scanning the extent. *)
type simple_source = {
  s_class : string;
  s_var : string;
  s_minus : string list;
  s_pred : Ast.predicate option;
}

let rec as_simple = function
  | Plan.Bind { class_name; var; minus; every = _ } ->
      Some { s_class = class_name; s_var = var; s_minus = minus; s_pred = None }
  | Plan.Select { source; pred; var = _ } -> begin
      match as_simple source with
      | Some ({ s_pred = None; _ } as s) -> Some { s with s_pred = Some pred }
      | Some _ | None -> None
    end
  | Plan.Named_obj _ | Plan.Ind_sel _ | Plan.Path_ind_sel _ | Plan.Join _
  | Plan.Project _ | Plan.Group _ | Plan.Sort _ | Plan.Union _ ->
      None

let class_matches env ~class_name ~minus oid =
  match Catalog.class_of_object env.Eval.catalog oid with
  | None -> false
  | Some info ->
      Catalog.is_subclass_of env.Eval.catalog ~sub:info.Catalog.class_name
        ~super:class_name
      && not
           (List.exists
              (fun m ->
                Catalog.is_subclass_of env.Eval.catalog ~sub:info.Catalog.class_name
                  ~super:m)
              minus)

(* Fetch a referenced object through a simple source: class membership
   plus the residual predicate. *)
let fetch_simple env (s : simple_source) oid =
  if not (class_matches env ~class_name:s.s_class ~minus:s.s_minus oid) then None
  else
    match item_of env oid with
    | None -> None
    | Some item -> begin
        match s.s_pred with
        | None -> Some item
        | Some pred ->
            if Eval.predicate env [ (s.s_var, item) ] pred then Some item else None
      end

(* The pointer shape of a join predicate: [lv.attr = rv.self]. *)
let pointer_pred = function
  | Ast.Cmp (Ast.Eq, Ast.Path (lv, (_ :: _ as path)), Ast.Path (rv, [])) ->
      Some (lv, path, rv)
  | Ast.Cmp (Ast.Eq, Ast.Path (rv, []), Ast.Path (lv, (_ :: _ as path))) ->
      Some (lv, path, rv)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Plan evaluation                                                     *)

let rec rows_of env node : Eval.row list =
  match node with
  | Plan.Bind { class_name; var; every = _; minus } ->
      let out = ref [] in
      Catalog.scan_extent env.Eval.catalog ~every:true ~minus class_name
        ~f:(fun oid value ->
          out := [ (var, { Collection.oid = Some oid; value }) ] :: !out);
      List.rev !out
  | Plan.Named_obj { name; var } -> begin
      match Catalog.named_object env.Eval.catalog name with
      | None -> failwith (Printf.sprintf "unknown named object %s" name)
      | Some oid -> begin
          match item_of env oid with
          | Some item -> [ [ (var, item) ] ]
          | None -> []
        end
    end
  | Plan.Ind_sel { source; preds } -> begin
      match as_simple source with
      | None -> failwith "Ind_sel over a non-class source"
      | Some s ->
          let probe (p : Plan.indexed_pred) =
            match
              Catalog.find_index env.Eval.catalog ~class_name:s.s_class
                ~attr:p.Plan.ip_attr
            with
            | None -> None
            | Some index -> Some (probe_index index p)
          in
          let oid_sets = List.filter_map probe preds in
          let candidates =
            match oid_sets with
            | [] -> []
            | first :: rest ->
                List.fold_left
                  (fun acc set -> List.filter (fun o -> List.exists (Oid.equal o) set) acc)
                  first rest
          in
          List.filter_map
            (fun oid ->
              Option.map (fun item -> [ (s.s_var, item) ]) (fetch_simple env s oid))
            (List.sort_uniq Oid.compare candidates)
    end
  | Plan.Path_ind_sel { class_name; var; path; cmp; constant } -> begin
      match Catalog.find_path_index env.Eval.catalog ~class_name ~path with
      | None ->
          failwith
            (Printf.sprintf "no path index on %s.%s" class_name (String.concat "." path))
      | Some px ->
          let module Jx = Mood_storage.Join_index in
          let module Bt = Mood_storage.Btree in
          let heads =
            match cmp with
            | Ast.Eq -> Jx.Path.probe px ~terminal:constant
            | Ast.Lt -> Jx.Path.probe_range px ~lo:Bt.Unbounded ~hi:(Bt.Exclusive constant)
            | Ast.Le -> Jx.Path.probe_range px ~lo:Bt.Unbounded ~hi:(Bt.Inclusive constant)
            | Ast.Gt -> Jx.Path.probe_range px ~lo:(Bt.Exclusive constant) ~hi:Bt.Unbounded
            | Ast.Ge -> Jx.Path.probe_range px ~lo:(Bt.Inclusive constant) ~hi:Bt.Unbounded
            | Ast.Ne ->
                Jx.Path.probe_range px ~lo:Bt.Unbounded ~hi:(Bt.Exclusive constant)
                @ Jx.Path.probe_range px ~lo:(Bt.Exclusive constant) ~hi:Bt.Unbounded
          in
          List.filter_map
            (fun oid -> Option.map (fun item -> [ (var, item) ]) (item_of env oid))
            (List.sort_uniq Oid.compare heads)
    end
  | Plan.Select { source; pred; var = _ } ->
      List.filter (fun row -> Eval.predicate env row pred) (rows_of env source)
  | Plan.Join { left; right; method_; pred } -> join env left right method_ pred
  | Plan.Project { source; items = _ } ->
      rows_of env source (* the SELECT list is applied by [run] at the top *)
  | Plan.Group { source; by; having; aggregates } ->
      let input = rows_of env source in
      let groups =
        if by = [] then [ ([ Value.Null ], input) ] (* one group, possibly empty *)
        else group_rows env input by
      in
      let rows =
        List.map
          (fun (_, members) ->
            let representative = match members with r :: _ -> r | [] -> [] in
            if aggregates = [] then representative
            else begin
              let fields =
                List.map
                  (fun agg -> (Ast.expr_to_string agg, compute_aggregate env members agg))
                  aggregates
              in
              representative
              @ [ ("#agg", { Collection.oid = None; value = Value.Tuple fields }) ]
            end)
          groups
      in
      begin
        match having with
        | None -> rows
        | Some pred -> List.filter (fun row -> Eval.predicate env row pred) rows
      end
  | Plan.Sort { source; keys } ->
      let input = rows_of env source in
      let cmp a b = compare_rows env keys a b in
      Heap.sort_with_runs ~cmp ~run_length:1024 input
  | Plan.Union nodes ->
      let all = List.concat_map (rows_of env) nodes in
      dedup_rows all

(* One aggregate value over a group's member rows. NULL inner values do
   not contribute; empty inputs give COUNT 0 and NULL for the rest. *)
and compute_aggregate env members agg =
  match agg with
  | Ast.Aggregate (fn, inner) -> begin
      let values =
        match inner with
        | None -> List.map (fun _ -> Value.Int 1) members
        | Some e ->
            List.filter_map
              (fun row ->
                match Eval.expr env row e with Value.Null -> None | v -> Some v)
              members
      in
      match fn with
      | Ast.Count -> Value.Int (List.length values)
      | Ast.Sum -> begin
          match values with
          | [] -> Value.Null
          | first :: rest ->
              let open Mood_model.Operand in
              to_value
                (List.fold_left (fun acc v -> add acc (of_value v)) (of_value first) rest)
        end
      | Ast.Avg -> begin
          let numerics = List.filter_map Value.as_float values in
          match numerics with
          | [] -> Value.Null
          | _ ->
              Value.Float
                (List.fold_left ( +. ) 0. numerics /. float_of_int (List.length numerics))
        end
      | Ast.Min | Ast.Max ->
          let better a b =
            match Eval.compare_values a b with
            | Some c -> if (fn = Ast.Min && c <= 0) || (fn = Ast.Max && c >= 0) then a else b
            | None -> a
          in
          begin
            match values with
            | [] -> Value.Null
            | first :: rest -> List.fold_left better first rest
          end
    end
  | _ -> failwith "compute_aggregate: not an aggregate expression"

and probe_index index (p : Plan.indexed_pred) =
  match index, p.Plan.ip_cmp with
  | Catalog.Btree_index bt, Ast.Eq -> Btree.search bt ~key:p.Plan.ip_constant
  | Catalog.Btree_index bt, Ast.Lt ->
      range_oids bt ~lo:Btree.Unbounded ~hi:(Btree.Exclusive p.Plan.ip_constant)
  | Catalog.Btree_index bt, Ast.Le ->
      range_oids bt ~lo:Btree.Unbounded ~hi:(Btree.Inclusive p.Plan.ip_constant)
  | Catalog.Btree_index bt, Ast.Gt ->
      range_oids bt ~lo:(Btree.Exclusive p.Plan.ip_constant) ~hi:Btree.Unbounded
  | Catalog.Btree_index bt, Ast.Ge ->
      range_oids bt ~lo:(Btree.Inclusive p.Plan.ip_constant) ~hi:Btree.Unbounded
  | Catalog.Btree_index bt, Ast.Ne ->
      (* Index gives no benefit for <>; full key scan. *)
      let out = ref [] in
      Btree.iter bt (fun key postings ->
          if Value.compare key p.Plan.ip_constant <> 0 then out := postings @ !out);
      !out
  | Catalog.Hash_index h, Ast.Eq -> Hash_index.search h ~key:p.Plan.ip_constant
  | Catalog.Hash_index _, (Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) ->
      failwith "hash index probed with a non-equality comparison"

and range_oids bt ~lo ~hi = List.concat_map snd (Btree.range bt ~lo ~hi)

and group_rows env rows by =
  let groups : (Value.t list * Eval.row list ref) list ref = ref [] in
  List.iter
    (fun row ->
      let key = List.map (Eval.expr env row) by in
      match
        List.find_opt
          (fun (k, _) -> List.length k = List.length key && List.for_all2 Value.equal k key)
          !groups
      with
      | Some (_, members) -> members := row :: !members
      | None -> groups := (key, ref [ row ]) :: !groups)
    rows;
  List.rev_map (fun (k, members) -> (k, List.rev !members)) !groups

and compare_rows env keys a b =
  let rec go = function
    | [] -> 0
    | (e, dir) :: rest -> begin
        let va = Eval.expr env a e and vb = Eval.expr env b e in
        let c =
          match Eval.compare_values va vb with
          | Some c -> c
          | None -> begin
              (* Nulls and incomparables sort last. *)
              match va, vb with
              | Value.Null, Value.Null -> 0
              | Value.Null, _ -> 1
              | _, Value.Null -> -1
              | _, _ -> 0
            end
        in
        let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
        if c <> 0 then c else go rest
      end
  in
  go keys

and dedup_rows rows =
  let key row =
    String.concat "|"
      (List.map
         (fun (var, (item : Collection.item)) ->
           var ^ "="
           ^
           match item.Collection.oid with
           | Some oid -> Oid.to_string oid
           | None -> Value.to_string item.Collection.value)
         (List.sort (fun (a, _) (b, _) -> String.compare a b) row))
  in
  let seen = Hashtbl.create 64 in
  List.filter
    (fun row ->
      let k = key row in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    rows

(* ---------------- Joins ---------------- *)

and join env left right method_ pred =
  let left_rows = rows_of env left in
  match pointer_pred pred with
  | Some (lv, path, rv) when List.mem lv (Plan.vars left) && List.mem rv (Plan.vars right)
    -> begin
      let simple = as_simple right in
      match method_, simple with
      | (Join_cost.Forward_traversal | Join_cost.Hash_partition), Some s ->
          pointer_join_lazy env left_rows lv path rv s
      | Join_cost.Binary_join_index, Some s ->
          bji_join env left_rows lv path rv s
      | (Join_cost.Forward_traversal | Join_cost.Hash_partition | Join_cost.Binary_join_index), None ->
          pointer_join_materialized env left_rows lv path rv (rows_of env right)
      | Join_cost.Backward_traversal, _ ->
          backward_join env left_rows lv path rv (rows_of env right)
    end
  | Some _ | None ->
      (* General theta join / cross product: nested loop. *)
      let right_rows = rows_of env right in
      List.concat_map
        (fun l ->
          List.filter_map
            (fun r ->
              let merged = l @ r in
              if Eval.predicate env merged pred then Some merged else None)
            right_rows)
        left_rows

(* Chase the reference chain [path] from the left variable; the last
   hop's targets are matched against the right side. Intermediate hops
   (for multi-attribute pointer predicates) are dereferenced. *)
and chase env (item : Collection.item) path =
  match path with
  | [] -> [ item ]
  | attr :: rest -> begin
      match Value.tuple_get item.Collection.value attr with
      | None -> []
      | Some field ->
          if rest = [] then
            List.filter_map (item_of env) (refs_of_field field)
          else
            List.concat_map
              (fun oid ->
                match item_of env oid with
                | Some next -> chase env next rest
                | None -> [])
              (refs_of_field field)
    end

(* OIDs reached from [item] along [path]'s last reference hop;
   intermediate hops are dereferenced (charging random reads), the
   final hop's identifiers are returned unfetched. *)
and last_hop_oids env (item : Collection.item) = function
  | [] -> []
  | [ attr ] -> begin
      match Value.tuple_get item.Collection.value attr with
      | Some field -> refs_of_field field
      | None -> []
    end
  | attr :: rest -> begin
      match Value.tuple_get item.Collection.value attr with
      | Some field ->
          List.concat_map
            (fun oid ->
              match item_of env oid with
              | Some next -> last_hop_oids env next rest
              | None -> [])
            (refs_of_field field)
      | None -> []
    end

and pointer_join_lazy env left_rows lv path rv s =
  (* Fetch each referenced target through the simple source: this
     charges the random page reads the forward-traversal and
     hash-partition cost formulas model. *)
  List.concat_map
    (fun l ->
      match List.assoc_opt lv l with
      | None -> []
      | Some item ->
          List.filter_map
            (fun oid ->
              Option.map (fun target -> l @ [ (rv, target) ]) (fetch_simple env s oid))
            (last_hop_oids env item path))
    left_rows

and pointer_join_materialized env left_rows lv path rv right_rows =
  (* Probe materialized right rows by OID. *)
  let by_oid = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match List.assoc_opt rv r with
      | Some ({ Collection.oid = Some oid; _ } : Collection.item) ->
          Hashtbl.replace by_oid oid r
      | Some _ | None -> ())
    right_rows;
  List.concat_map
    (fun l ->
      match List.assoc_opt lv l with
      | None -> []
      | Some item ->
          List.filter_map
            (fun oid -> Option.map (fun r -> l @ r) (Hashtbl.find_opt by_oid oid))
            (last_hop_oids env item path))
    left_rows

and bji_join env left_rows lv path rv s =
  (* Binary join indexes cover single reference attributes; multi-hop
     pointer predicates fall back to lazy chasing. *)
  match path with
  | [ attr ] -> begin
      match Catalog.find_join_index env.Eval.catalog ~class_name:s.s_class ~attr with
      | None -> pointer_join_lazy env left_rows lv path rv s
      | Some _jx ->
          (* The forward direction of the index maps C objects to D
             objects — equivalent to chasing the stored pointer, so the
             lazy path is reused; the index matters for *backward*
             probes, exercised via [Join_index.Binary] directly. *)
          pointer_join_lazy env left_rows lv path rv s
    end
  | _ -> pointer_join_lazy env left_rows lv path rv s

and backward_join env left_rows lv path rv right_rows =
  (* Scan-and-compare: for each left object's reference set, compare
     against every right candidate (the k_c * fan * k_d comparisons of
     Section 6.2). *)
  List.concat_map
    (fun l ->
      match List.assoc_opt lv l with
      | None -> []
      | Some item ->
          let targets =
            List.concat_map
              (fun (t : Collection.item) ->
                match t.Collection.oid with Some o -> [ o ] | None -> [])
              (chase env item path)
          in
          List.filter_map
            (fun r ->
              match List.assoc_opt rv r with
              | Some ({ Collection.oid = Some oid; _ } : Collection.item)
                when List.exists (Oid.equal oid) targets ->
                  Some (l @ r)
              | Some _ | None -> None)
            right_rows)
    left_rows

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let project_rows env items rows =
  List.map
    (fun row ->
      let fields =
        List.map
          (fun (item : Ast.select_item) ->
            let label =
              match item.Ast.alias with
              | Some a -> a
              | None -> Ast.expr_to_string item.Ast.expr
            in
            (label, Eval.expr env row item.Ast.expr))
          items
      in
      Value.Tuple fields)
    rows

let rec top_projection = function
  | Plan.Project { items; _ } -> Some items
  | Plan.Sort { source; _ } -> top_projection source
  | Plan.Bind _ | Plan.Named_obj _ | Plan.Ind_sel _ | Plan.Path_ind_sel _
  | Plan.Select _ | Plan.Join _ | Plan.Group _ | Plan.Union _ ->
      None

let run env node =
  let rows = rows_of env node in
  let projected = Option.map (fun items -> project_rows env items rows) (top_projection node) in
  { rows; projected }

let run_query env opt_env q =
  let optimized = Optimizer.optimize opt_env q in
  run env optimized.Optimizer.plan

let result_values r =
  match r.projected with
  | Some values -> values
  | None ->
      List.map
        (fun row ->
          Value.Tuple
            (List.map
               (fun (var, (item : Collection.item)) ->
                 ( var,
                   match item.Collection.oid with
                   | Some oid -> Value.Ref oid
                   | None -> item.Collection.value ))
               row))
        r.rows

let result_oids r =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add oid =
    if not (Hashtbl.mem seen oid) then begin
      Hashtbl.replace seen oid ();
      out := oid :: !out
    end
  in
  let rec refs_in = function
    | Value.Ref oid -> add oid
    | Value.Tuple fields -> List.iter (fun (_, v) -> refs_in v) fields
    | Value.Set xs | Value.List xs -> List.iter refs_in xs
    | Value.Null | Value.Int _ | Value.Long _ | Value.Float _ | Value.Str _
    | Value.Char _ | Value.Bool _ ->
        ()
  in
  begin
    match r.projected with
    | Some values ->
        (* The SELECT list decides which objects the user asked for. *)
        List.iter refs_in values
    | None ->
        List.iter
          (fun row ->
            List.iter
              (fun (_, (item : Collection.item)) ->
                match item.Collection.oid with Some oid -> add oid | None -> ())
              row)
          r.rows
  end;
  List.rev !out
