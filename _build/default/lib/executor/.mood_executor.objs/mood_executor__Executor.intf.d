lib/executor/executor.mli: Eval Mood_model Mood_optimizer Mood_sql
