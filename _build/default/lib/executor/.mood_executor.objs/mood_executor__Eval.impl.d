lib/executor/eval.ml: Format Int64 List Mood_algebra Mood_catalog Mood_funcmgr Mood_model Mood_sql String
