lib/executor/eval.mli: Mood_algebra Mood_catalog Mood_funcmgr Mood_model Mood_sql
