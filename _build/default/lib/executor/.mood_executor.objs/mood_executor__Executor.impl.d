lib/executor/executor.ml: Eval Hashtbl List Mood_algebra Mood_catalog Mood_cost Mood_model Mood_optimizer Mood_sql Mood_storage Mood_util Option Printf String
