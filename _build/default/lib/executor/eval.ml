module Ast = Mood_sql.Ast
module Value = Mood_model.Value
module Oid = Mood_model.Oid
module Operand = Mood_model.Operand
module Catalog = Mood_catalog.Catalog
module Fm = Mood_funcmgr.Function_manager
module Collection = Mood_algebra.Collection

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun m -> raise (Eval_error m)) fmt

type env = { catalog : Catalog.t; funcs : Fm.t; scope : Fm.scope }

type row = (string * Collection.item) list

let ctx env =
  { Collection.deref = (fun oid -> Catalog.get_object env.catalog oid);
    type_of =
      (fun oid ->
        match Catalog.class_of_object env.catalog oid with
        | Some info -> info.Catalog.class_id
        | None -> -1)
  }

(* Navigate one attribute from a value, dereferencing references.
   Multi-valued intermediate results fan out. *)
let rec navigate env value attrs =
  match attrs with
  | [] -> [ value ]
  | attr :: rest -> begin
      match value with
      | Value.Null -> []
      | Value.Ref oid -> begin
          match Catalog.get_object env.catalog oid with
          | Some target -> navigate env target (attr :: rest)
          | None -> []
        end
      | Value.Set elements | Value.List elements ->
          List.concat_map (fun e -> navigate env e (attr :: rest)) elements
      | Value.Tuple fields -> begin
          match List.assoc_opt attr fields with
          | Some v -> navigate env v rest
          | None -> eval_error "no attribute %s in %s" attr (Value.to_string value)
        end
      | Value.Int _ | Value.Long _ | Value.Float _ | Value.Str _ | Value.Char _
      | Value.Bool _ ->
          eval_error "cannot navigate attribute %s of atomic value" attr
    end

let item_value (item : Collection.item) = item.Collection.value

let item_ref (item : Collection.item) =
  match item.Collection.oid with
  | Some oid -> Value.Ref oid
  | None -> item.Collection.value

let lookup_var row var =
  match List.assoc_opt var row with
  | Some item -> item
  | None -> eval_error "unbound range variable %s" var

let rec expr env row e =
  match e with
  | Ast.Const v -> v
  | Ast.Path (var, []) -> item_ref (lookup_var row var)
  | Ast.Path (var, path) -> begin
      let item = lookup_var row var in
      match navigate env (item_value item) path with
      | [] -> Value.Null
      | [ v ] -> v
      | many -> Value.Set many
    end
  | Ast.Method_call (var, path, name, args) -> begin
      let item = lookup_var row var in
      let receivers =
        if path = [] then [ item_ref item ] else navigate env (item_value item) path
      in
      let arg_values = List.map (expr env row) args in
      let invoke receiver =
        match receiver with
        | Value.Ref oid -> begin
            try Fm.invoke env.funcs ~scope:env.scope ~self:oid ~function_name:name ~args:arg_values
            with Fm.Mood_exception { message; _ } -> eval_error "%s" message
          end
        | other -> begin
            (* Method on a transient value: resolve by the variable's
               static class via the binding row is unavailable here;
               transient receivers carry no class, so this fails. *)
            eval_error "method %s on non-object value %s" name (Value.to_string other)
          end
      in
      match receivers with
      | [] -> Value.Null
      | [ r ] -> invoke r
      | many -> Value.Set (List.map invoke many)
    end
  | Ast.Arith (op, a, b) -> begin
      let va = expr env row a and vb = expr env row b in
      if va = Value.Null || vb = Value.Null then Value.Null
      else begin
        let f =
          match op with
          | Ast.Add -> Operand.add
          | Ast.Sub -> Operand.sub
          | Ast.Mul -> Operand.mul
          | Ast.Div -> Operand.div
          | Ast.Mod -> Operand.modulo
        in
        try Operand.to_value (f (Operand.of_value va) (Operand.of_value vb))
        with Operand.Type_error m -> eval_error "%s" m
      end
    end
  | Ast.Neg a -> begin
      match expr env row a with
      | Value.Int i -> Value.Int (-i)
      | Value.Long l -> Value.Long (Int64.neg l)
      | Value.Float f -> Value.Float (-.f)
      | Value.Null -> Value.Null
      | v -> eval_error "cannot negate %s" (Value.to_string v)
    end
  | Ast.Aggregate (_, _) as agg -> begin
      (* Aggregate values are precomputed per group by the executor's
         GROUP stage and carried in the row's [#agg] pseudo-binding. *)
      let key = Ast.expr_to_string agg in
      match List.assoc_opt "#agg" row with
      | Some item -> begin
          match Value.tuple_get item.Collection.value key with
          | Some v -> v
          | None -> eval_error "aggregate %s not computed for this group" key
        end
      | None -> eval_error "aggregate %s outside a grouped query" key
    end

let compare_values a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> None
  | Value.Ref x, Value.Ref y -> Some (Oid.compare x y)
  | (Value.Int _ | Value.Long _ | Value.Float _), (Value.Int _ | Value.Long _ | Value.Float _)
  | Value.Str _, (Value.Str _ | Value.Char _)
  | Value.Char _, (Value.Str _ | Value.Char _)
  | Value.Bool _, Value.Bool _ -> begin
      match a, b with
      | Value.Str s, Value.Char c -> Some (String.compare s (String.make 1 c))
      | Value.Char c, Value.Str s -> Some (String.compare (String.make 1 c) s)
      | _, _ -> Some (Value.compare a b)
    end
  | Value.Tuple _, Value.Tuple _ | Value.Set _, Value.Set _ | Value.List _, Value.List _
    ->
      Some (Value.compare a b)
  | _, _ -> None

let comparison_holds cmp c =
  match cmp with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

(* Existential semantics for multi-valued sides. *)
let cmp_values cmp va vb =
  let elements = function
    | Value.Set xs | Value.List xs -> xs
    | v -> [ v ]
  in
  match va, vb with
  | (Value.Set _ | Value.List _), _ | _, (Value.Set _ | Value.List _) ->
      List.exists
        (fun x ->
          List.exists
            (fun y ->
              match compare_values x y with
              | Some c -> comparison_holds cmp c
              | None -> false)
            (elements vb))
        (elements va)
  | _, _ -> begin
      match compare_values va vb with
      | Some c -> comparison_holds cmp c
      | None -> false
    end

let rec predicate env row p =
  match p with
  | Ast.Ptrue -> true
  | Ast.Pfalse -> false
  | Ast.Is_null (e, negated) ->
      let is_null = expr env row e = Value.Null in
      if negated then not is_null else is_null
  | Ast.Not inner -> not (predicate env row inner)
  | Ast.And (a, b) -> predicate env row a && predicate env row b
  | Ast.Or (a, b) -> predicate env row a || predicate env row b
  | Ast.Cmp (cmp, a, b) -> cmp_values cmp (expr env row a) (expr env row b)
