(** Static checking of MOODSQL statements against the catalog: FROM
    classes exist, minus-classes are subclasses, range variables are
    unique, every path expression resolves, method calls match declared
    signatures, and comparisons relate compatible types. *)

exception Type_error of string

val expr_type :
  catalog:Mood_catalog.Catalog.t ->
  bindings:(string * string) list ->
  Ast.expr ->
  Mood_model.Mtype.t option
(** The static type, or [None] for expressions whose type is a whole
    object (a bare range variable — its "type" is the bound class).
    Raises [Type_error] for unresolvable names. *)

val check_query : catalog:Mood_catalog.Catalog.t -> Ast.query -> (string * string) list
(** Validates the query and returns the range-variable bindings
    (variable, class). Raises [Type_error]. *)

val check_statement : catalog:Mood_catalog.Catalog.t -> Ast.statement -> unit
(** Validates DDL/DML forms (SELECT delegates to [check_query]). *)
