(** Classification of selection predicates (Section 7).

    Within an AND-term, each predicate is one of:
    - {b Immediate selection}: [s.A θ c] — atomic attribute or
      parameterless method of the range variable, compared to a
      constant (ImmSelInfo, Table 11);
    - {b Path selection}: [s.A1...Am θ c] — a multi-hop path expression
      against a constant, implying implicit joins (PathSelInfo,
      Table 12);
    - {b Explicit join}: a comparison relating two different range
      variables (e.g. [c.drivetrain.engine = v]);
    - {b Other selection}: method calls with parameters, arithmetic over
      attributes, and anything else (OtherSelInfo).

    Classification needs the catalog to distinguish an atomic attribute
    from the first hop of a path and to resolve parameterless methods. *)

type side = {
  var : string;       (** range variable *)
  path : string list; (** attribute chain; [] is the variable itself *)
}

type classified =
  | Immediate of { target : side; cmp : Ast.comparison; constant : Mood_model.Value.t }
  | Immediate_method of {
      var : string;
      method_name : string;
      cmp : Ast.comparison;
      constant : Mood_model.Value.t;
    }
  | Path_selection of { target : side; cmp : Ast.comparison; constant : Mood_model.Value.t }
  | Explicit_join of { left : side; cmp : Ast.comparison; right : side }
  | Other of Ast.predicate

val classify :
  catalog:Mood_catalog.Catalog.t ->
  bindings:(string * string) list ->
  Ast.predicate ->
  classified
(** [bindings] maps range variables to class names (from the FROM
    clause). Comparisons written constant-first are mirrored. A
    one-attribute path is Immediate only if the attribute is atomic on
    the variable's class; otherwise it is a path/other selection. *)

val classify_term :
  catalog:Mood_catalog.Catalog.t ->
  bindings:(string * string) list ->
  Dnf.and_term ->
  classified list

val pp : Format.formatter -> classified -> unit
