(** MOODSQL recursive-descent parser.

    Accepted statement forms:
    {v
    SELECT list FROM [EVERY] C [- Sub]* v, ... [WHERE p]
      [GROUP BY paths [HAVING p]] [ORDER BY paths [ASC|DESC]]
    CREATE CLASS Name [INHERITS FROM A, B]
      [TUPLE ( attr Type, ... )] [METHODS: name (p Type, ...) RetType, ...]
    CREATE [BTREE|HASH] INDEX ON Class ( attr )
    new Class < value, ... >
    UPDATE Class [v] SET attr = expr, ... [WHERE p]
    DELETE FROM Class [v] [WHERE p]
    DEFINE METHOD Class::name ( p Type, ... ) RetType { body }
    DROP METHOD Class::name
    v}
    Clauses after FROM may appear in any order (the paper's grammar
    lists GROUP BY before WHERE; both readings parse). *)

exception Parse_error of string

val parse : string -> Ast.statement
(** Raises [Parse_error] (lexing errors are converted too). *)

val parse_query : string -> Ast.query
(** Parses a SELECT and raises [Parse_error] for any other statement. *)

val parse_predicate : string -> Ast.predicate
(** Parses a bare predicate (tests and the query-manager REPL). *)
