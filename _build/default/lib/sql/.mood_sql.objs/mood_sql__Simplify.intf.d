lib/sql/simplify.mli: Ast
