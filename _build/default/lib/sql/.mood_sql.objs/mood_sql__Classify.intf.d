lib/sql/classify.mli: Ast Dnf Format Mood_catalog Mood_model
