lib/sql/classify.ml: Ast Format List Mood_catalog Mood_model String
