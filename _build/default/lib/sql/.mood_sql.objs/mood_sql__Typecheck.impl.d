lib/sql/typecheck.ml: Ast Format List Mood_catalog Mood_model Option String
