lib/sql/parser.ml: Ast Format Lexer List Mood_model String
