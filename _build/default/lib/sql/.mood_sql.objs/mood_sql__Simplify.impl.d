lib/sql/simplify.ml: Ast List Mood_model Option
