lib/sql/ast.ml: Format List Mood_model String
