lib/sql/typecheck.mli: Ast Mood_catalog Mood_model
