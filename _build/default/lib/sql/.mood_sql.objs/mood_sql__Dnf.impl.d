lib/sql/dnf.ml: Ast List
