lib/sql/dnf.mli: Ast
