lib/sql/lexer.mli:
