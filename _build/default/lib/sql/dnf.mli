(** Disjunctive normal form (Section 7).

    "The predicates in the WHERE and HAVING clauses are transformed into
    disjunctive normal form ... Thus, the UNION operation is performed
    after evaluating the predicates for the AND-terms." NOT is pushed to
    the leaves first (De Morgan; [NOT (a θ b)] flips the comparison),
    then OR is distributed over AND. *)

type and_term = Ast.predicate list
(** Conjuncts — each is a leaf predicate ([Cmp], or [Not] of a leaf that
    cannot be flipped). *)

val push_not : Ast.predicate -> Ast.predicate
(** Negation-normal form: NOT appears only over leaves; comparisons
    absorb it ([NOT (a < b)] becomes [a >= b]). *)

val of_predicate : Ast.predicate -> and_term list
(** The DNF: a disjunction of AND-terms. [Ptrue] yields [[[]]] (one
    empty AND-term, selecting everything); [Pfalse] yields [[]] (no
    terms). Duplicate conjuncts inside an AND-term are removed. *)

val to_predicate : and_term list -> Ast.predicate
(** Rebuilds a predicate from DNF (for printing and testing). *)
