module Value = Mood_model.Value
module Operand = Mood_model.Operand

let fold_arith op a b =
  let o =
    match op with
    | Ast.Add -> Operand.add
    | Ast.Sub -> Operand.sub
    | Ast.Mul -> Operand.mul
    | Ast.Div -> Operand.div
    | Ast.Mod -> Operand.modulo
  in
  try Some (Operand.to_value (o (Operand.of_value a) (Operand.of_value b)))
  with Operand.Type_error _ -> None

let is_zero = function Value.Int 0 -> true | Value.Float 0. -> true | Value.Long 0L -> true | _ -> false

let is_one = function Value.Int 1 -> true | Value.Float 1. -> true | Value.Long 1L -> true | _ -> false

let rec expr e =
  match e with
  | Ast.Const _ | Ast.Path _ -> e
  | Ast.Method_call (var, path, name, args) ->
      Ast.Method_call (var, path, name, List.map expr args)
  | Ast.Aggregate (fn, inner) -> Ast.Aggregate (fn, Option.map expr inner)
  | Ast.Neg inner -> begin
      match expr inner with
      | Ast.Const v -> begin
          match fold_arith Ast.Sub (Value.Int 0) v with
          | Some folded -> Ast.Const folded
          | None -> Ast.Neg (Ast.Const v)
        end
      | Ast.Neg e -> e
      | simplified -> Ast.Neg simplified
    end
  | Ast.Arith (op, a, b) -> begin
      let a = expr a and b = expr b in
      match a, b, op with
      | Ast.Const va, Ast.Const vb, _ -> begin
          match fold_arith op va vb with
          | Some folded -> Ast.Const folded
          | None -> Ast.Arith (op, a, b)
        end
      | Ast.Const v, e, Ast.Add when is_zero v -> e
      | e, Ast.Const v, (Ast.Add | Ast.Sub) when is_zero v -> e
      | Ast.Const v, e, Ast.Mul when is_one v -> e
      | e, Ast.Const v, (Ast.Mul | Ast.Div) when is_one v -> e
      | Ast.Const v, _, Ast.Mul when is_zero v -> Ast.Const v
      | _, Ast.Const v, Ast.Mul when is_zero v -> Ast.Const v
      | _, _, _ -> Ast.Arith (op, a, b)
    end

let fold_comparison op a b =
  let c = Value.compare a b in
  match op with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let rec predicate p =
  match p with
  | Ast.Ptrue | Ast.Pfalse -> p
  | Ast.Is_null (e, negated) -> begin
      match expr e with
      | Ast.Const Value.Null -> if negated then Ast.Pfalse else Ast.Ptrue
      | Ast.Const _ -> if negated then Ast.Ptrue else Ast.Pfalse
      | simplified -> Ast.Is_null (simplified, negated)
    end
  | Ast.Cmp (op, a, b) -> begin
      match expr a, expr b with
      | Ast.Const va, Ast.Const vb ->
          if fold_comparison op va vb then Ast.Ptrue else Ast.Pfalse
      | a, b -> Ast.Cmp (op, a, b)
    end
  | Ast.Not inner -> begin
      match predicate inner with
      | Ast.Ptrue -> Ast.Pfalse
      | Ast.Pfalse -> Ast.Ptrue
      | Ast.Not p -> p
      | simplified -> Ast.Not simplified
    end
  | Ast.And (a, b) -> begin
      match predicate a, predicate b with
      | Ast.Ptrue, p | p, Ast.Ptrue -> p
      | Ast.Pfalse, _ | _, Ast.Pfalse -> Ast.Pfalse
      | a, b -> Ast.And (a, b)
    end
  | Ast.Or (a, b) -> begin
      match predicate a, predicate b with
      | Ast.Pfalse, p | p, Ast.Pfalse -> p
      | Ast.Ptrue, _ | _, Ast.Ptrue -> Ast.Ptrue
      | a, b -> Ast.Or (a, b)
    end
