type token =
  | Int of int
  | Float of float
  | String of string
  | Ident of string
  | Punct of string
  | Eof

exception Lex_error of string

let lex_error fmt = Format.kasprintf (fun m -> raise (Lex_error m)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let two_char_puncts = [ "<>"; "<="; ">=" ]

let one_char_puncts = [ "("; ")"; "<"; ">"; ","; "."; ";"; "*"; "="; "+"; "-"; "/"; "%"; ":" ]

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = source.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && source.[!i + 1] = '-' then begin
      (* SQL comment to end of line *)
      while !i < n && source.[!i] <> '\n' do
        incr i
      done
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while
        !i < n
        && ((source.[!i] >= '0' && source.[!i] <= '9')
           || source.[!i] = '.'
              && !i + 1 < n
              && source.[!i + 1] >= '0'
              && source.[!i + 1] <= '9')
      do
        incr i
      done;
      let text = String.sub source start (!i - start) in
      if String.contains text '.' then push (Float (float_of_string text))
      else push (Int (int_of_string text))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do
        incr i
      done;
      push (Ident (String.sub source start (!i - start)))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then lex_error "unterminated string literal"
        else if source.[!i] = '\'' then
          if !i + 1 < n && source.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf source.[!i];
          incr i
        end
      done;
      push (String (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub source !i 2 else "" in
      if List.mem two two_char_puncts then begin
        push (Punct two);
        i := !i + 2
      end
      else begin
        let one = String.make 1 c in
        if List.mem one one_char_puncts then begin
          push (Punct one);
          incr i
        end
        else lex_error "unexpected character %C at offset %d" c !i
      end
    end
  done;
  List.rev (Eof :: !tokens)

let keyword = function
  | Ident name -> Some (String.uppercase_ascii name)
  | Int _ | Float _ | String _ | Punct _ | Eof -> None

let raw_braces source ~start =
  let n = String.length source in
  let rec find i =
    if i >= n then lex_error "expected '{' to open a method body"
    else if source.[i] = '{' then i
    else find (i + 1)
  in
  let open_at = find start in
  let rec scan i depth =
    if i >= n then lex_error "unbalanced braces in method body"
    else
      match source.[i] with
      | '{' -> scan (i + 1) (depth + 1)
      | '}' -> if depth = 1 then i else scan (i + 1) (depth - 1)
      | _ -> scan (i + 1) depth
  in
  let close_at = scan open_at 0 in
  (String.sub source open_at (close_at - open_at + 1), close_at + 1)
