module Mtype = Mood_model.Mtype
module Value = Mood_model.Value
module Catalog = Mood_catalog.Catalog

exception Type_error of string

let type_error fmt = Format.kasprintf (fun m -> raise (Type_error m)) fmt

let constant_type = function
  | Value.Int _ -> Some (Mtype.Basic Mtype.Integer)
  | Value.Long _ -> Some (Mtype.Basic Mtype.Long_integer)
  | Value.Float _ -> Some (Mtype.Basic Mtype.Float)
  | Value.Str s -> Some (Mtype.Basic (Mtype.String (max 1 (String.length s))))
  | Value.Char _ -> Some (Mtype.Basic Mtype.Char)
  | Value.Bool _ -> Some (Mtype.Basic Mtype.Boolean)
  | Value.Null | Value.Tuple _ | Value.Set _ | Value.List _ | Value.Ref _ -> None

let numeric = function
  | Some (Mtype.Basic (Mtype.Integer | Mtype.Float | Mtype.Long_integer)) -> true
  | Some (Mtype.Basic (Mtype.String _ | Mtype.Char | Mtype.Boolean))
  | Some (Mtype.Tuple _ | Mtype.Set _ | Mtype.List _ | Mtype.Reference _)
  | None ->
      false

let rec expr_type ~catalog ~bindings e =
  match e with
  | Ast.Const v -> constant_type v
  | Ast.Path (var, path) -> begin
      match List.assoc_opt var bindings with
      | None -> type_error "unbound range variable %s" var
      | Some cls -> begin
          match path with
          | [] -> None (* the object itself *)
          | _ -> begin
              match Catalog.resolve_path catalog ~class_name:cls ~path with
              | None ->
                  type_error "path %s does not exist on class %s"
                    (Ast.path_to_string var path) cls
              | Some steps -> begin
                  match List.rev steps with
                  | (_, ty) :: _ -> Some ty
                  | [] -> None
                end
            end
        end
    end
  | Ast.Method_call (var, path, name, args) -> begin
      match List.assoc_opt var bindings with
      | None -> type_error "unbound range variable %s" var
      | Some cls ->
          let receiver_class =
            if path = [] then cls
            else begin
              match Catalog.resolve_path catalog ~class_name:cls ~path with
              | None ->
                  type_error "path %s does not exist on class %s"
                    (Ast.path_to_string var path) cls
              | Some steps -> begin
                  match List.rev steps with
                  | (_, ty) :: _ -> begin
                      match Mtype.referenced_class ty with
                      | Some target -> target
                      | None ->
                          type_error "method %s applied to non-object path %s" name
                            (Ast.path_to_string var path)
                    end
                  | [] -> cls
                end
            end
          in
          begin
            match Catalog.find_method catalog ~class_name:receiver_class ~method_name:name with
            | None -> type_error "class %s has no method %s" receiver_class name
            | Some m ->
                if List.length m.Catalog.parameters <> List.length args then
                  type_error "method %s.%s expects %d argument(s)" receiver_class name
                    (List.length m.Catalog.parameters);
                List.iter
                  (fun arg -> ignore (expr_type ~catalog ~bindings arg))
                  args;
                Some m.Catalog.return_type
          end
    end
  | Ast.Arith (_, a, b) ->
      let ta = expr_type ~catalog ~bindings a and tb = expr_type ~catalog ~bindings b in
      if not (numeric ta) then
        type_error "non-numeric operand %s in arithmetic" (Ast.expr_to_string a);
      if not (numeric tb) then
        type_error "non-numeric operand %s in arithmetic" (Ast.expr_to_string b);
      if ta = Some (Mtype.Basic Mtype.Float) || tb = Some (Mtype.Basic Mtype.Float) then
        Some (Mtype.Basic Mtype.Float)
      else ta
  | Ast.Neg a ->
      let ta = expr_type ~catalog ~bindings a in
      if not (numeric ta) then
        type_error "non-numeric operand %s under negation" (Ast.expr_to_string a);
      ta
  | Ast.Aggregate (fn, inner) -> begin
      let inner_ty = Option.map (expr_type ~catalog ~bindings) inner in
      match fn, inner_ty with
      | Ast.Count, _ -> Some (Mtype.Basic Mtype.Integer)
      | Ast.Avg, Some ty ->
          if not (numeric ty) then
            type_error "AVG requires a numeric argument";
          Some (Mtype.Basic Mtype.Float)
      | Ast.Sum, Some ty ->
          if not (numeric ty) then
            type_error "SUM requires a numeric argument";
          ty
      | (Ast.Min | Ast.Max), Some ty -> ty
      | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
          type_error "%s requires an argument" (Ast.agg_fn_to_string fn)
    end

let comparable ta tb =
  match ta, tb with
  | None, _ | _, None -> true (* object comparisons (identity) or NULL *)
  | Some a, Some b -> begin
      match a, b with
      | Mtype.Basic (Mtype.Integer | Mtype.Float | Mtype.Long_integer),
        Mtype.Basic (Mtype.Integer | Mtype.Float | Mtype.Long_integer) ->
          true
      | Mtype.Basic (Mtype.String _), Mtype.Basic (Mtype.String _ | Mtype.Char)
      | Mtype.Basic Mtype.Char, Mtype.Basic (Mtype.String _ | Mtype.Char) ->
          true
      | Mtype.Basic Mtype.Boolean, Mtype.Basic Mtype.Boolean -> true
      | Mtype.Reference _, Mtype.Reference _ -> true
      | _, _ -> Mtype.equal a b
    end

let rec check_predicate ~catalog ~bindings p =
  match p with
  | Ast.Ptrue | Ast.Pfalse -> ()
  | Ast.Not inner -> check_predicate ~catalog ~bindings inner
  | Ast.And (a, b) | Ast.Or (a, b) ->
      check_predicate ~catalog ~bindings a;
      check_predicate ~catalog ~bindings b
  | Ast.Is_null (e, _) -> ignore (expr_type ~catalog ~bindings e)
  | Ast.Cmp (_, a, b) ->
      let ta = expr_type ~catalog ~bindings a and tb = expr_type ~catalog ~bindings b in
      if not (comparable ta tb) then
        type_error "incomparable operands: %s vs %s" (Ast.expr_to_string a)
          (Ast.expr_to_string b)

let check_query ~catalog (q : Ast.query) =
  let bindings =
    List.map
      (fun (item : Ast.from_item) ->
        if item.Ast.named then begin
          (* FROM NAMED x v: the binding's class is the named object's. *)
          match Catalog.named_object catalog item.Ast.class_name with
          | None -> type_error "unknown named object %s in FROM" item.Ast.class_name
          | Some oid -> begin
              match Catalog.class_of_object catalog oid with
              | Some info -> (item.Ast.var, info.Catalog.class_name)
              | None -> type_error "named object %s is dangling" item.Ast.class_name
            end
        end
        else begin
          begin
            match Catalog.find_class catalog item.Ast.class_name with
            | None -> type_error "unknown class %s in FROM" item.Ast.class_name
            | Some info ->
                if info.Catalog.kind <> Catalog.Class then
                  type_error "%s is a type, not a class: it has no extent"
                    item.Ast.class_name
          end;
          List.iter
            (fun minus ->
              if not (Catalog.is_subclass_of catalog ~sub:minus ~super:item.Ast.class_name)
              then
                type_error "%s is not a subclass of %s (FROM minus)" minus
                  item.Ast.class_name)
            item.Ast.minus;
          (item.Ast.var, item.Ast.class_name)
        end)
      q.Ast.from
  in
  let vars = List.map fst bindings in
  if List.length (List.sort_uniq String.compare vars) <> List.length vars then
    type_error "duplicate range variable in FROM";
  List.iter (fun (item : Ast.select_item) -> ignore (expr_type ~catalog ~bindings item.Ast.expr)) q.Ast.select;
  Option.iter
    (fun where ->
      if Ast.predicate_aggregates where <> [] then
        type_error "aggregates are not allowed in WHERE (use HAVING)";
      check_predicate ~catalog ~bindings where)
    q.Ast.where;
  List.iter
    (fun e ->
      if Ast.aggregates_in e <> [] then type_error "aggregates are not allowed in GROUP BY";
      ignore (expr_type ~catalog ~bindings e))
    q.Ast.group_by;
  Option.iter (check_predicate ~catalog ~bindings) q.Ast.having;
  List.iter (fun (e, _) -> ignore (expr_type ~catalog ~bindings e)) q.Ast.order_by;
  bindings

let check_statement ~catalog stmt =
  match stmt with
  | Ast.Select q -> ignore (check_query ~catalog q)
  | Ast.Create_class { cc_name; cc_supers; _ } ->
      if Catalog.find_class catalog cc_name <> None then
        type_error "class %s already exists" cc_name;
      List.iter
        (fun s ->
          if Catalog.find_class catalog s = None then type_error "unknown superclass %s" s)
        cc_supers
  | Ast.Create_index { ci_class; ci_attr; _ } -> begin
      match Catalog.attribute_type catalog ~class_name:ci_class ~attr:ci_attr with
      | Some ty when Mtype.is_atomic ty -> ()
      | Some _ -> type_error "cannot index non-atomic attribute %s.%s" ci_class ci_attr
      | None -> type_error "class %s has no attribute %s" ci_class ci_attr
    end
  | Ast.New_object { no_class; no_values } -> begin
      match Catalog.find_class catalog no_class with
      | None -> type_error "unknown class %s" no_class
      | Some _ ->
          let attrs = Catalog.attributes catalog no_class in
          if List.length no_values > List.length attrs then
            type_error "new %s: %d values for %d attributes" no_class
              (List.length no_values) (List.length attrs)
    end
  | Ast.Update { up_class; up_var; up_set; up_where } -> begin
      match Catalog.find_class catalog up_class with
      | None -> type_error "unknown class %s" up_class
      | Some _ ->
          let bindings = [ (up_var, up_class) ] in
          List.iter
            (fun (attr, e) ->
              begin
                match Catalog.attribute_type catalog ~class_name:up_class ~attr with
                | None -> type_error "class %s has no attribute %s" up_class attr
                | Some _ -> ()
              end;
              ignore (expr_type ~catalog ~bindings e))
            up_set;
          Option.iter (check_predicate ~catalog ~bindings) up_where
    end
  | Ast.Delete { de_class; de_var; de_where } -> begin
      match Catalog.find_class catalog de_class with
      | None -> type_error "unknown class %s" de_class
      | Some _ ->
          Option.iter (check_predicate ~catalog ~bindings:[ (de_var, de_class) ]) de_where
    end
  | Ast.Define_method { dm_class; _ } | Ast.Drop_method { xm_class = dm_class; _ } ->
      if Catalog.find_class catalog dm_class = None then
        type_error "unknown class %s" dm_class
  | Ast.Name_object { nm_name; nm_query } ->
      if Catalog.named_object catalog nm_name <> None then
        type_error "object name %s already in use" nm_name;
      ignore (check_query ~catalog nm_query)
  | Ast.Drop_name name ->
      if Catalog.named_object catalog name = None then
        type_error "unknown named object %s" name
