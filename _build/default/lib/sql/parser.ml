module Value = Mood_model.Value
module Mtype = Mood_model.Mtype

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ :: [] | [] -> Lexer.Eof

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let save st = st.toks

let restore st toks = st.toks <- toks

let at_keyword st kw =
  match Lexer.keyword (peek st) with Some k -> String.equal k kw | None -> false

let eat_keyword st kw =
  if at_keyword st kw then advance st else parse_error "expected keyword %s" kw

let at_punct st p = match peek st with Lexer.Punct q -> String.equal p q | _ -> false

let eat_punct st p =
  if at_punct st p then advance st else parse_error "expected %S" p

let ident st =
  match peek st with
  | Lexer.Ident name ->
      advance st;
      name
  | _ -> parse_error "expected identifier"

(* Keywords that terminate expression lists; identifiers spelling these
   cannot be range variables or attributes in the positions we check. *)
let clause_keywords =
  [ "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "BY"; "AND"; "OR"; "NOT";
    "ASC"; "DESC"; "AS"; "EVERY"; "BETWEEN"; "SELECT" ]

let at_clause_keyword st =
  match Lexer.keyword (peek st) with
  | Some k -> List.mem k clause_keywords
  | None -> false

(* ------------------------------------------------------------------ *)
(* Types (DDL)                                                         *)

let rec parse_type st =
  match Lexer.keyword (peek st) with
  | Some "INTEGER" ->
      advance st;
      Mtype.Basic Mtype.Integer
  | Some "FLOAT" ->
      advance st;
      Mtype.Basic Mtype.Float
  | Some "LONGINTEGER" ->
      advance st;
      Mtype.Basic Mtype.Long_integer
  | Some "CHAR" ->
      advance st;
      Mtype.Basic Mtype.Char
  | Some "BOOLEAN" ->
      advance st;
      Mtype.Basic Mtype.Boolean
  | Some "STRING" -> begin
      advance st;
      if at_punct st "(" then begin
        advance st;
        match peek st with
        | Lexer.Int n ->
            advance st;
            eat_punct st ")";
            Mtype.Basic (Mtype.String n)
        | _ -> parse_error "expected length in String(n)"
      end
      else Mtype.Basic (Mtype.String 255)
    end
  | Some "REFERENCE" ->
      advance st;
      eat_punct st "(";
      let cls = ident st in
      eat_punct st ")";
      Mtype.Reference cls
  | Some "SET" ->
      advance st;
      eat_punct st "(";
      let ty = parse_type st in
      eat_punct st ")";
      Mtype.Set ty
  | Some "LIST" ->
      advance st;
      eat_punct st "(";
      let ty = parse_type st in
      eat_punct st ")";
      Mtype.List ty
  | Some "TUPLE" ->
      advance st;
      eat_punct st "(";
      let attrs = parse_attr_list st in
      eat_punct st ")";
      Mtype.Tuple attrs
  | Some other -> parse_error "unknown type %s" other
  | None -> parse_error "expected a type"

and parse_attr_list st =
  let rec loop acc =
    let name = ident st in
    let ty = parse_type st in
    let acc = (name, ty) :: acc in
    if at_punct st "," then begin
      advance st;
      loop acc
    end
    else List.rev acc
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    if at_punct st "+" then begin
      advance st;
      lhs := Ast.Arith (Ast.Add, !lhs, parse_multiplicative st)
    end
    else if at_punct st "-" then begin
      advance st;
      lhs := Ast.Arith (Ast.Sub, !lhs, parse_multiplicative st)
    end
    else continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    if at_punct st "*" then begin
      advance st;
      lhs := Ast.Arith (Ast.Mul, !lhs, parse_unary st)
    end
    else if at_punct st "/" then begin
      advance st;
      lhs := Ast.Arith (Ast.Div, !lhs, parse_unary st)
    end
    else if at_punct st "%" then begin
      advance st;
      lhs := Ast.Arith (Ast.Mod, !lhs, parse_unary st)
    end
    else continue := false
  done;
  !lhs

and parse_unary st =
  if at_punct st "-" then begin
    advance st;
    Ast.Neg (parse_unary st)
  end
  else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Int v ->
      advance st;
      Ast.Const (Value.Int v)
  | Lexer.Float v ->
      advance st;
      Ast.Const (Value.Float v)
  | Lexer.String v ->
      advance st;
      Ast.Const (Value.Str v)
  | Lexer.Punct "(" ->
      advance st;
      let e = parse_expr st in
      eat_punct st ")";
      e
  | Lexer.Ident _ -> begin
      match Lexer.keyword (peek st) with
      | Some "TRUE" ->
          advance st;
          Ast.Const (Value.Bool true)
      | Some "FALSE" ->
          advance st;
          Ast.Const (Value.Bool false)
      | Some "NULL" ->
          advance st;
          Ast.Const Value.Null
      | Some (("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") as fn)
        when peek2 st = Lexer.Punct "(" ->
          advance st;
          advance st;
          let agg_fn =
            match fn with
            | "COUNT" -> Ast.Count
            | "SUM" -> Ast.Sum
            | "AVG" -> Ast.Avg
            | "MIN" -> Ast.Min
            | _ -> Ast.Max
          in
          let inner =
            if at_punct st "*" then begin
              advance st;
              if agg_fn <> Ast.Count then
                parse_error "only COUNT accepts a * argument";
              None
            end
            else Some (parse_expr st)
          in
          eat_punct st ")";
          Ast.Aggregate (agg_fn, inner)
      | _ -> parse_path_or_call st
    end
  | Lexer.Punct p -> parse_error "unexpected %S in expression" p
  | Lexer.Eof -> parse_error "unexpected end of input in expression"

and parse_path_or_call st =
  let exception Method_found of string list * string * Ast.expr list in
  let var = ident st in
  let rec loop acc =
    if at_punct st "." then begin
      advance st;
      let name = ident st in
      if String.equal (String.uppercase_ascii name) "SELF" && not (at_punct st ".") then
        (* v.self denotes the object itself. *)
        List.rev acc
      else if at_punct st "(" then begin
        advance st;
        let args =
          if at_punct st ")" then []
          else begin
            let rec args_loop acc =
              let e = parse_expr st in
              if at_punct st "," then begin
                advance st;
                args_loop (e :: acc)
              end
              else List.rev (e :: acc)
            in
            args_loop []
          end
        in
        eat_punct st ")";
        raise (Method_found (List.rev acc, name, args))
      end
      else loop (name :: acc)
    end
    else List.rev acc
  in
  try Ast.Path (var, loop [])
  with Method_found (path, name, args) -> Ast.Method_call (var, path, name, args)

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)

let rec parse_predicate_toks st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while at_keyword st "OR" do
    advance st;
    lhs := Ast.Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while at_keyword st "AND" do
    advance st;
    lhs := Ast.And (!lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  if at_keyword st "NOT" then begin
    advance st;
    Ast.Not (parse_not st)
  end
  else parse_atom st

and parse_atom st =
  if at_punct st "(" then begin
    (* Backtrack: '(' may open a nested predicate or an arithmetic
       grouping; try the predicate reading first. *)
    let saved = save st in
    advance st;
    match
      (try
         let p = parse_predicate_toks st in
         eat_punct st ")";
         Some p
       with Parse_error _ ->
         restore st saved;
         None)
    with
    | Some p -> p
    | None -> parse_comparison st
  end
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_expr st in
  if at_keyword st "IS" then begin
    advance st;
    let negated = at_keyword st "NOT" in
    if negated then advance st;
    eat_keyword st "NULL";
    Ast.Is_null (lhs, negated)
  end
  else if at_keyword st "BETWEEN" then begin
    advance st;
    let lo = parse_expr st in
    eat_keyword st "AND";
    let hi = parse_expr st in
    Ast.And (Ast.Cmp (Ast.Ge, lhs, lo), Ast.Cmp (Ast.Le, lhs, hi))
  end
  else begin
    let op =
      match peek st with
      | Lexer.Punct "=" -> Some Ast.Eq
      | Lexer.Punct "<>" -> Some Ast.Ne
      | Lexer.Punct "<" -> Some Ast.Lt
      | Lexer.Punct "<=" -> Some Ast.Le
      | Lexer.Punct ">" -> Some Ast.Gt
      | Lexer.Punct ">=" -> Some Ast.Ge
      | _ -> None
    in
    match op with
    | Some op ->
        advance st;
        let rhs = parse_expr st in
        Ast.Cmp (op, lhs, rhs)
    | None ->
        (* A bare Boolean-valued expression (e.g. a method call). *)
        Ast.Cmp (Ast.Eq, lhs, Ast.Const (Value.Bool true))
  end

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)

let parse_from_item st =
  if at_keyword st "NAMED" then begin
    advance st;
    let object_name = ident st in
    let var =
      match peek st with
      | Lexer.Ident _ when not (at_clause_keyword st) -> ident st
      | _ -> object_name
    in
    { Ast.class_name = object_name; every = false; minus = []; var; named = true }
  end
  else begin
    let every = at_keyword st "EVERY" in
    if every then advance st;
    let class_name = ident st in
    let rec minus acc =
      (* A '-' here subtracts a subclass unless it begins an arithmetic
         expression, which cannot happen in FROM position. *)
      if at_punct st "-" then begin
        advance st;
        minus (ident st :: acc)
      end
      else List.rev acc
    in
    let minus = minus [] in
    let var =
      match peek st with
      | Lexer.Ident _ when not (at_clause_keyword st) -> ident st
      | _ -> class_name
    in
    { Ast.class_name; every; minus; var; named = false }
  end

let parse_select_list st =
  if at_punct st "*" then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let expr = parse_expr st in
      let alias =
        if at_keyword st "AS" then begin
          advance st;
          Some (ident st)
        end
        else None
      in
      let acc = { Ast.expr; alias } :: acc in
      if at_punct st "," then begin
        advance st;
        loop acc
      end
      else List.rev acc
    in
    loop []
  end

let parse_expr_list st =
  let rec loop acc =
    let e = parse_expr st in
    let acc = e :: acc in
    if at_punct st "," then begin
      advance st;
      loop acc
    end
    else List.rev acc
  in
  loop []

let parse_query_toks st =
  eat_keyword st "SELECT";
  let select = parse_select_list st in
  eat_keyword st "FROM";
  let rec from_loop acc =
    let item = parse_from_item st in
    let acc = item :: acc in
    if at_punct st "," then begin
      advance st;
      from_loop acc
    end
    else List.rev acc
  in
  let from = from_loop [] in
  let where = ref None and group_by = ref [] and having = ref None and order_by = ref [] in
  let continue = ref true in
  while !continue do
    if at_keyword st "WHERE" then begin
      advance st;
      where := Some (parse_predicate_toks st)
    end
    else if at_keyword st "GROUP" then begin
      advance st;
      eat_keyword st "BY";
      group_by := parse_expr_list st;
      if at_keyword st "HAVING" then begin
        advance st;
        having := Some (parse_predicate_toks st)
      end
    end
    else if at_keyword st "ORDER" then begin
      advance st;
      eat_keyword st "BY";
      let rec order_loop acc =
        let e = parse_expr st in
        let dir =
          if at_keyword st "DESC" then begin
            advance st;
            Ast.Desc
          end
          else begin
            if at_keyword st "ASC" then advance st;
            Ast.Asc
          end
        in
        let acc = (e, dir) :: acc in
        if at_punct st "," then begin
          advance st;
          order_loop acc
        end
        else List.rev acc
      in
      order_by := order_loop []
    end
    else continue := false
  done;
  { Ast.select;
    from;
    where = !where;
    group_by = !group_by;
    having = !having;
    order_by = !order_by
  }

(* ------------------------------------------------------------------ *)
(* DDL / DML                                                           *)

let parse_method_decl st =
  let m_name = ident st in
  eat_punct st "(";
  let m_params =
    if at_punct st ")" then []
    else begin
      let rec loop acc =
        let p = ident st in
        let ty = parse_type st in
        let acc = (p, ty) :: acc in
        if at_punct st "," then begin
          advance st;
          loop acc
        end
        else List.rev acc
      in
      loop []
    end
  in
  eat_punct st ")";
  let m_return = parse_type st in
  { Ast.m_name; m_params; m_return }

let parse_create st =
  advance st (* CREATE *);
  match Lexer.keyword (peek st) with
  | Some "CLASS" ->
      advance st;
      let cc_name = ident st in
      let cc_supers = ref [] and cc_attrs = ref [] and cc_methods = ref [] in
      let continue = ref true in
      while !continue do
        match Lexer.keyword (peek st) with
        | Some "INHERITS" ->
            advance st;
            eat_keyword st "FROM";
            let rec supers acc =
              let s = ident st in
              if at_punct st "," then begin
                advance st;
                supers (s :: acc)
              end
              else List.rev (s :: acc)
            in
            cc_supers := supers []
        | Some "TUPLE" ->
            advance st;
            eat_punct st "(";
            cc_attrs := parse_attr_list st;
            eat_punct st ")"
        | Some "METHODS" ->
            advance st;
            (* the paper writes "METHODS:"; the colon is optional here *)
            if at_punct st ":" then advance st;
            let rec methods acc =
              match peek st with
              | Lexer.Ident _ when not (at_clause_keyword st) ->
                  let decl = parse_method_decl st in
                  if at_punct st "," then begin
                    advance st;
                    methods (decl :: acc)
                  end
                  else List.rev (decl :: acc)
              | _ -> List.rev acc
            in
            cc_methods := methods []
        | _ -> continue := false
      done;
      Ast.Create_class
        { cc_name; cc_supers = !cc_supers; cc_attrs = !cc_attrs; cc_methods = !cc_methods }
  | Some ("BTREE" | "HASH" | "INDEX") ->
      let ci_kind =
        match Lexer.keyword (peek st) with
        | Some "HASH" ->
            advance st;
            `Hash
        | Some "BTREE" ->
            advance st;
            `Btree
        | _ -> `Btree
      in
      eat_keyword st "INDEX";
      eat_keyword st "ON";
      let ci_class = ident st in
      eat_punct st "(";
      let ci_attr = ident st in
      eat_punct st ")";
      Ast.Create_index { ci_class; ci_attr; ci_kind }
  | _ -> parse_error "expected CLASS or INDEX after CREATE"

let parse_new st =
  advance st (* NEW *);
  let no_class = ident st in
  eat_punct st "<";
  let no_values = if at_punct st ">" then [] else parse_expr_list st in
  eat_punct st ">";
  Ast.New_object { no_class; no_values }

let parse_update st =
  advance st (* UPDATE *);
  let up_class = ident st in
  let up_var =
    match peek st with
    | Lexer.Ident _ when not (at_clause_keyword st) && not (at_keyword st "SET") -> ident st
    | _ -> up_class
  in
  eat_keyword st "SET";
  let rec sets acc =
    let attr = ident st in
    eat_punct st "=";
    let e = parse_expr st in
    let acc = (attr, e) :: acc in
    if at_punct st "," then begin
      advance st;
      sets acc
    end
    else List.rev acc
  in
  let up_set = sets [] in
  let up_where =
    if at_keyword st "WHERE" then begin
      advance st;
      Some (parse_predicate_toks st)
    end
    else None
  in
  Ast.Update { up_class; up_var; up_set; up_where }

let parse_delete st =
  advance st (* DELETE *);
  eat_keyword st "FROM";
  let de_class = ident st in
  let de_var =
    match peek st with
    | Lexer.Ident _ when not (at_clause_keyword st) -> ident st
    | _ -> de_class
  in
  let de_where =
    if at_keyword st "WHERE" then begin
      advance st;
      Some (parse_predicate_toks st)
    end
    else None
  in
  Ast.Delete { de_class; de_var; de_where }

(* DEFINE METHOD needs the raw source because the body is MoodC, not
   MOODSQL. We split at the first '{'. *)
let parse_define_method source =
  let brace =
    match String.index_opt source '{' with
    | Some i -> i
    | None -> parse_error "DEFINE METHOD requires a { body }"
  in
  let header = String.sub source 0 brace in
  let body, _ = Lexer.raw_braces source ~start:brace in
  (* header: DEFINE METHOD Class::name (params) RetType — '::' lexes as
     two ':' which are not MOODSQL puncts, so pre-split on "::" . *)
  let header =
    match String.index_opt header ':' with
    | Some i when i + 1 < String.length header && header.[i + 1] = ':' ->
        String.sub header 0 i ^ " " ^ String.sub header (i + 2) (String.length header - i - 2)
    | Some _ | None -> header
  in
  let st = { toks = Lexer.tokenize header } in
  eat_keyword st "DEFINE";
  eat_keyword st "METHOD";
  let dm_class = ident st in
  let decl = parse_method_decl st in
  Ast.Define_method { dm_class; dm_decl = decl; dm_body = body }

let parse_drop source =
  (* DROP METHOD Class::name | DROP NAME ident *)
  let source =
    match String.index_opt source ':' with
    | Some i when i + 1 < String.length source && source.[i + 1] = ':' ->
        String.sub source 0 i ^ " " ^ String.sub source (i + 2) (String.length source - i - 2)
    | Some _ | None -> source
  in
  let st = { toks = Lexer.tokenize source } in
  eat_keyword st "DROP";
  if at_keyword st "NAME" then begin
    advance st;
    Ast.Drop_name (ident st)
  end
  else begin
    eat_keyword st "METHOD";
    let xm_class = ident st in
    let xm_name = ident st in
    Ast.Drop_method { xm_class; xm_name }
  end

let parse_name st =
  advance st (* NAME *);
  let nm_name = ident st in
  eat_keyword st "AS";
  let nm_query = parse_query_toks st in
  Ast.Name_object { nm_name; nm_query }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

(* First word of the statement, scanned without the lexer: DEFINE
   METHOD statements contain a MoodC body the MOODSQL lexer rejects. *)
let first_keyword source =
  let n = String.length source in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let rec skip i = if i < n && is_space source.[i] then skip (i + 1) else i in
  let start = skip 0 in
  let rec word i =
    if i < n
       && ((source.[i] >= 'a' && source.[i] <= 'z')
          || (source.[i] >= 'A' && source.[i] <= 'Z'))
    then word (i + 1)
    else i
  in
  let stop = word start in
  if stop > start then Some (String.uppercase_ascii (String.sub source start (stop - start)))
  else None

let finish st result =
  (match peek st with
  | Lexer.Punct ";" -> advance st
  | _ -> ());
  match peek st with
  | Lexer.Eof -> result
  | _ -> parse_error "trailing input after statement"

let parse source =
  try
    match first_keyword source with
    | Some "DEFINE" -> parse_define_method source
    | Some "DROP" -> parse_drop source
    | _ ->
        let st = { toks = Lexer.tokenize source } in
        let result =
          match Lexer.keyword (peek st) with
          | Some "SELECT" -> Ast.Select (parse_query_toks st)
          | Some "CREATE" -> parse_create st
          | Some "NAME" -> parse_name st
          | Some "NEW" -> parse_new st
          | Some "UPDATE" -> parse_update st
          | Some "DELETE" -> parse_delete st
          | Some other -> parse_error "unknown statement %s" other
          | None -> parse_error "empty statement"
        in
        finish st result
  with Lexer.Lex_error msg -> parse_error "lexical error: %s" msg

let parse_query source =
  match parse source with
  | Ast.Select q -> q
  | Ast.Create_class _ | Ast.Create_index _ | Ast.New_object _ | Ast.Update _
  | Ast.Delete _ | Ast.Define_method _ | Ast.Drop_method _ | Ast.Name_object _
  | Ast.Drop_name _ ->
      parse_error "expected a SELECT statement"

let parse_predicate source =
  try
    let st = { toks = Lexer.tokenize source } in
    let p = parse_predicate_toks st in
    match peek st with
    | Lexer.Eof -> p
    | _ -> parse_error "trailing input after predicate"
  with Lexer.Lex_error msg -> parse_error "lexical error: %s" msg
