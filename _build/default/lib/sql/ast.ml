(** Abstract syntax of MOODSQL (Section 3.1).

    This module is pure types plus printers; the parser builds these and
    every later stage (simplifier, DNF, classifier, optimizer) consumes
    them. *)

module Value = Mood_model.Value
module Mtype = Mood_model.Mtype

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type agg_fn = Count | Sum | Avg | Min | Max

(** Expressions. A [Path (v, [])] denotes the range variable itself
    (the paper's [v] or [d.self]); [Path (v, ["a"; "b"])] is the path
    expression [v.a.b]. Aggregates (COUNT of all rows, [SUM(e.age)],
    ...) are legal only in the SELECT list and HAVING clause of a
    grouped query (or over the whole result when there is no GROUP
    BY). *)
type expr =
  | Const of Value.t
  | Path of string * string list
  | Method_call of string * string list * string * expr list
      (** receiver variable, receiver path, method name, arguments *)
  | Arith of arith * expr * expr
  | Neg of expr
  | Aggregate of agg_fn * expr option  (** [None] only for the count of all rows *)

type predicate =
  | Cmp of comparison * expr * expr
  | Is_null of expr * bool  (** [IS NULL] ([true] = negated: [IS NOT NULL]) *)
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate
  | Ptrue
  | Pfalse

(** One FROM-clause item: [EVERY Automobile - JapaneseAuto c] becomes
    [{ class_name = "Automobile"; every = true; minus = ["JapaneseAuto"];
    var = "c"; named = false }]. Without [EVERY], subclass instances are
    still included by IS-A (the paper's minus operator exists to exclude
    them), so [every] records only whether the keyword was written. With
    [named = true] ([FROM NAMED president p]) the item ranges over a
    single named object and [class_name] holds the object's {e name}. *)
type from_item = {
  class_name : string;
  every : bool;
  minus : string list;
  var : string;
  named : bool;
}

type order_direction = Asc | Desc

type select_item = { expr : expr; alias : string option }

type query = {
  select : select_item list;
  from : from_item list;
  where : predicate option;
  group_by : expr list;
  having : predicate option;
  order_by : (expr * order_direction) list;
}

type method_decl = {
  m_name : string;
  m_params : (string * Mtype.t) list;
  m_return : Mtype.t;
}

type statement =
  | Select of query
  | Create_class of {
      cc_name : string;
      cc_supers : string list;
      cc_attrs : (string * Mtype.t) list;
      cc_methods : method_decl list;
    }
  | Create_index of { ci_class : string; ci_attr : string; ci_kind : [ `Btree | `Hash ] }
  | New_object of { no_class : string; no_values : expr list }
  | Update of {
      up_class : string;
      up_var : string;
      up_set : (string * expr) list;
      up_where : predicate option;
    }
  | Delete of { de_class : string; de_var : string; de_where : predicate option }
  | Define_method of {
      dm_class : string;
      dm_decl : method_decl;
      dm_body : string;  (** MoodC source *)
    }
  | Drop_method of { xm_class : string; xm_name : string }
  | Name_object of { nm_name : string; nm_query : query }
      (** [NAME president AS SELECT ...]: names the query's single
          result object *)
  | Drop_name of string

(* ------------------------------------------------------------------ *)
(* Printers                                                            *)

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let agg_fn_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let path_to_string var path = String.concat "." (var :: path)

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Path (var, path) -> Format.pp_print_string ppf (path_to_string var path)
  | Method_call (var, path, name, args) ->
      Format.fprintf ppf "%s.%s(%a)" (path_to_string var path) name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        args
  | Arith (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (arith_to_string op) pp_expr b
  | Neg e -> Format.fprintf ppf "(-%a)" pp_expr e
  | Aggregate (fn, None) -> Format.fprintf ppf "%s(*)" (agg_fn_to_string fn)
  | Aggregate (fn, Some e) -> Format.fprintf ppf "%s(%a)" (agg_fn_to_string fn) pp_expr e

let rec pp_predicate ppf = function
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_expr a (comparison_to_string op) pp_expr b
  | Is_null (e, negated) ->
      Format.fprintf ppf "%a IS %sNULL" pp_expr e (if negated then "NOT " else "")
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_predicate a pp_predicate b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_predicate a pp_predicate b
  | Not p -> Format.fprintf ppf "(NOT %a)" pp_predicate p
  | Ptrue -> Format.pp_print_string ppf "TRUE"
  | Pfalse -> Format.pp_print_string ppf "FALSE"

let expr_to_string e = Format.asprintf "%a" pp_expr e

let predicate_to_string p = Format.asprintf "%a" pp_predicate p

(** Range variables an expression mentions. *)
let rec expr_vars = function
  | Const _ -> []
  | Path (var, _) -> [ var ]
  | Method_call (var, _, _, args) -> var :: List.concat_map expr_vars args
  | Arith (_, a, b) -> expr_vars a @ expr_vars b
  | Neg e -> expr_vars e
  | Aggregate (_, Some e) -> expr_vars e
  | Aggregate (_, None) -> []

(** All aggregate subexpressions, outermost only, left to right. *)
let rec aggregates_in = function
  | Const _ | Path _ -> []
  | Method_call (_, _, _, args) -> List.concat_map aggregates_in args
  | Arith (_, a, b) -> aggregates_in a @ aggregates_in b
  | Neg e -> aggregates_in e
  | Aggregate (_, _) as agg -> [ agg ]

let rec predicate_aggregates = function
  | Cmp (_, a, b) -> aggregates_in a @ aggregates_in b
  | Is_null (e, _) -> aggregates_in e
  | And (a, b) | Or (a, b) -> predicate_aggregates a @ predicate_aggregates b
  | Not p -> predicate_aggregates p
  | Ptrue | Pfalse -> []

let rec predicate_vars = function
  | Cmp (_, a, b) -> expr_vars a @ expr_vars b
  | Is_null (e, _) -> expr_vars e
  | And (a, b) | Or (a, b) -> predicate_vars a @ predicate_vars b
  | Not p -> predicate_vars p
  | Ptrue | Pfalse -> []

let mirror = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
(** The comparison with swapped operands: [a < b] iff [b > a]. *)
