(** Expression simplification — the "expressions are simplified" pass of
    Section 7, run between parsing and DNF. Performs constant folding
    (via the run-time [Operand] machinery, so the same coercions apply),
    double-negation elimination, identity rules ([e + 0], [e * 1],
    [e * 0]), and Boolean constant propagation ([p AND TRUE = p],
    [p OR TRUE = TRUE], comparisons between constants). *)

val expr : Ast.expr -> Ast.expr

val predicate : Ast.predicate -> Ast.predicate
