module Value = Mood_model.Value
module Mtype = Mood_model.Mtype
module Catalog = Mood_catalog.Catalog

type side = { var : string; path : string list }

type classified =
  | Immediate of { target : side; cmp : Ast.comparison; constant : Value.t }
  | Immediate_method of {
      var : string;
      method_name : string;
      cmp : Ast.comparison;
      constant : Value.t;
    }
  | Path_selection of { target : side; cmp : Ast.comparison; constant : Value.t }
  | Explicit_join of { left : side; cmp : Ast.comparison; right : side }
  | Other of Ast.predicate

(* Is [path] on [cls] a chain of reference hops ending in an atomic
   attribute? Returns the number of reference hops. *)
let path_shape catalog cls path =
  match Catalog.resolve_path catalog ~class_name:cls ~path with
  | None -> None
  | Some steps -> begin
      match List.rev steps with
      | [] -> None
      | (_, last_ty) :: hops_rev ->
          if Mtype.is_atomic last_ty
             && List.for_all (fun (_, ty) -> Mtype.referenced_class ty <> None) hops_rev
          then Some (List.length hops_rev)
          else None
    end

let as_side = function
  | Ast.Path (var, path) -> Some { var; path }
  | Ast.Const _ | Ast.Method_call _ | Ast.Arith _ | Ast.Neg _ | Ast.Aggregate _ -> None

let classify ~catalog ~bindings p =
  let class_of var = List.assoc_opt var bindings in
  match p with
  | Ast.Cmp (cmp, lhs, rhs) -> begin
      (* Normalize constant-first comparisons. *)
      let cmp, lhs, rhs =
        match lhs, rhs with
        | Ast.Const _, (Ast.Path _ | Ast.Method_call _) -> (Ast.mirror cmp, rhs, lhs)
        | _, _ -> (cmp, lhs, rhs)
      in
      match lhs, rhs with
      | Ast.Path (var, path), Ast.Const constant -> begin
          match class_of var, path with
          | None, _ | _, [] -> Other p
          | Some cls, [ attr ] -> begin
              match Catalog.attribute_type catalog ~class_name:cls ~attr with
              | Some ty when Mtype.is_atomic ty ->
                  Immediate { target = { var; path }; cmp; constant }
              | Some _ -> Other p
              | None -> begin
                  (* Not an attribute: maybe a parameterless method. *)
                  match Catalog.find_method catalog ~class_name:cls ~method_name:attr with
                  | Some m when m.Catalog.parameters = [] ->
                      Immediate_method { var; method_name = attr; cmp; constant }
                  | Some _ | None -> Other p
                end
            end
          | Some cls, _ :: _ :: _ -> begin
              match path_shape catalog cls path with
              | Some _ -> Path_selection { target = { var; path }; cmp; constant }
              | None -> Other p
            end
        end
      | Ast.Method_call (var, [], name, []), Ast.Const constant when class_of var <> None ->
          Immediate_method { var; method_name = name; cmp; constant }
      | lhs, rhs -> begin
          match as_side lhs, as_side rhs with
          | Some left, Some right when not (String.equal left.var right.var) ->
              Explicit_join { left; cmp; right }
          | _, _ -> Other p
        end
    end
  | Ast.Is_null _ | Ast.And _ | Ast.Or _ | Ast.Not _ | Ast.Ptrue | Ast.Pfalse -> Other p

let classify_term ~catalog ~bindings term =
  List.map (classify ~catalog ~bindings) term

let pp_side ppf { var; path } =
  Format.pp_print_string ppf (Ast.path_to_string var path)

let pp ppf = function
  | Immediate { target; cmp; constant } ->
      Format.fprintf ppf "Immediate(%a %s %a)" pp_side target
        (Ast.comparison_to_string cmp) Value.pp constant
  | Immediate_method { var; method_name; cmp; constant } ->
      Format.fprintf ppf "ImmediateMethod(%s.%s() %s %a)" var method_name
        (Ast.comparison_to_string cmp) Value.pp constant
  | Path_selection { target; cmp; constant } ->
      Format.fprintf ppf "Path(%a %s %a)" pp_side target (Ast.comparison_to_string cmp)
        Value.pp constant
  | Explicit_join { left; cmp; right } ->
      Format.fprintf ppf "Join(%a %s %a)" pp_side left (Ast.comparison_to_string cmp)
        pp_side right
  | Other p -> Format.fprintf ppf "Other(%a)" Ast.pp_predicate p
