type and_term = Ast.predicate list

let negate_comparison = function
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt

let rec push_not p =
  match p with
  | Ast.Ptrue | Ast.Pfalse | Ast.Cmp _ | Ast.Is_null _ -> p
  | Ast.And (a, b) -> Ast.And (push_not a, push_not b)
  | Ast.Or (a, b) -> Ast.Or (push_not a, push_not b)
  | Ast.Not inner -> begin
      match inner with
      | Ast.Ptrue -> Ast.Pfalse
      | Ast.Pfalse -> Ast.Ptrue
      | Ast.Cmp (op, a, b) -> Ast.Cmp (negate_comparison op, a, b)
      | Ast.Is_null (e, negated) -> Ast.Is_null (e, not negated)
      | Ast.Not p -> push_not p
      | Ast.And (a, b) -> Ast.Or (push_not (Ast.Not a), push_not (Ast.Not b))
      | Ast.Or (a, b) -> Ast.And (push_not (Ast.Not a), push_not (Ast.Not b))
    end

let dedup term =
  let rec go seen = function
    | [] -> List.rev seen
    | p :: rest ->
        if List.exists (fun q -> Ast.predicate_to_string q = Ast.predicate_to_string p) seen
        then go seen rest
        else go (p :: seen) rest
  in
  go [] term

let of_predicate p =
  let rec go p =
    match p with
    | Ast.Ptrue -> [ [] ]
    | Ast.Pfalse -> []
    | Ast.Cmp _ | Ast.Is_null _ | Ast.Not _ -> [ [ p ] ]
    | Ast.Or (a, b) -> go a @ go b
    | Ast.And (a, b) ->
        let left = go a and right = go b in
        List.concat_map (fun l -> List.map (fun r -> l @ r) right) left
  in
  List.map dedup (go (push_not p))

let to_predicate terms =
  let conj = function
    | [] -> Ast.Ptrue
    | p :: rest -> List.fold_left (fun acc q -> Ast.And (acc, q)) p rest
  in
  match terms with
  | [] -> Ast.Pfalse
  | t :: rest -> List.fold_left (fun acc u -> Ast.Or (acc, conj u)) (conj t) rest
