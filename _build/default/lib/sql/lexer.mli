(** MOODSQL lexer. Keywords are case-insensitive; identifiers preserve
    case. String literals use single quotes (SQL style); method bodies
    in DEFINE METHOD arrive as brace-delimited raw text handled by the
    parser through {!val:raw_braces}. *)

type token =
  | Int of int
  | Float of float
  | String of string
  | Ident of string   (** identifier or keyword, original spelling *)
  | Punct of string   (** one of [ ( ) < > , . ; * = <> <= >= + - / % ] *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list
(** Raises [Lex_error] on unexpected characters. *)

val keyword : token -> string option
(** Uppercased spelling when the token is an identifier —
    [keyword (Ident "select") = Some "SELECT"]. *)

val raw_braces : string -> start:int -> string * int
(** [raw_braces source ~start] extracts a balanced ["{...}"] region of
    the original text beginning at the first ['{'] at or after [start];
    returns the body (braces included) and the index just past it.
    Raises [Lex_error] when unbalanced. Used for method bodies, which
    are not tokenized as MOODSQL. *)
