(** Binary min-heap over an arbitrary ordering.

    This is the heap behind the algebra's only sort method — "heap sort
    with merging" (Section 3.2, the [Sort] operator): collections are
    heapified in bounded runs and the runs merged with a heap of run
    heads. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** An empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val pop_min : 'a t -> 'a option
(** Removes and returns the minimum, or [None] when empty. *)

val peek_min : 'a t -> 'a option

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val sort_list : cmp:('a -> 'a -> int) -> 'a list -> 'a list
(** Heap sort: pushes everything and pops in order. Stable only up to
    [cmp]; duplicates are preserved (no duplicate elimination, matching
    the paper's [Sort]). *)

val merge_sorted : cmp:('a -> 'a -> int) -> 'a list list -> 'a list
(** K-way merge of already-sorted runs using a heap of run heads. *)

val sort_with_runs : cmp:('a -> 'a -> int) -> run_length:int -> 'a list -> 'a list
(** Heap sort with merging: sorts bounded runs with a heap, then k-way
    merges them — the external-sort shape the paper names. Raises
    [Invalid_argument] if [run_length <= 0]. *)
