(* Log-gamma via the Lanczos approximation (g = 7, n = 9 coefficients),
   accurate to ~1e-13 for the positive reals we care about. *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec ln_gamma x =
  if x < 0.5 then
    (* Reflection formula keeps the approximation in its sweet spot. *)
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma (1. -. x)
  else
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !acc

let ln_factorial n =
  if n < 0 then invalid_arg "Combinat.ln_factorial: negative argument";
  if n <= 1 then 0. else ln_gamma (float_of_int n +. 1.)

let ln_choose n k =
  if k < 0 || k > n then neg_infinity
  else ln_factorial n -. ln_factorial k -. ln_factorial (n - k)

let choose n k =
  if k < 0 || k > n then 0. else exp (ln_choose n k)

let c_approx ~n ~m ~r =
  ignore n;
  (* [n] does not appear in the paper's piecewise formula, but the paper
     carries it in the signature (its exact counterparts need it). *)
  if m <= 0 || r <= 0 then 0.
  else
    let mf = float_of_int m and rf = float_of_int r in
    if rf < mf /. 2. then rf
    else if rf < 2. *. mf then (rf +. mf) /. 3.
    else mf

let yao ~n ~m ~r =
  if m <= 0 || r <= 0 || n <= 0 then 0.
  else if r >= n then float_of_int m
  else
    let nf = float_of_int n and mf = float_of_int m in
    let per_block = nf /. mf in
    (* prod_{i=1..r} (n - n/m - i + 1) / (n - i + 1), in log space. *)
    let rec loop i acc =
      if i > r then acc
      else
        let fi = float_of_int i in
        let num = nf -. per_block -. fi +. 1. in
        if num <= 0. then neg_infinity
        else loop (i + 1) (acc +. log num -. log (nf -. fi +. 1.))
    in
    let log_miss = loop 1 0. in
    mf *. (1. -. exp log_miss)

let cardenas ~m ~r =
  if m <= 0 || r <= 0 then 0.
  else
    let mf = float_of_int m in
    mf *. (1. -. ((1. -. (1. /. mf)) ** float_of_int r))

(* ln C(t, y) generalized to fractional y via log-gamma. *)
let ln_choose_real t y =
  if y < 0. || y > t then neg_infinity
  else ln_gamma (t +. 1.) -. ln_gamma (y +. 1.) -. ln_gamma (t -. y +. 1.)

let overlap_probability ~t ~x ~y =
  if x <= 0. || y <= 0. then 0.
  else if t <= 0 then 1.
  else
    let tf = float_of_int t in
    if x >= tf || y >= tf then 1.
    else if x +. y > tf then 1.
    else
      let log_ratio = ln_choose_real (tf -. x) y -. ln_choose_real tf y in
      let p = 1. -. exp log_ratio in
      Float.max 0. (Float.min 1. p)

let distinct_pages ~pages ~hits = cardenas ~m:pages ~r:hits
