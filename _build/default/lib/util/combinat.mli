(** Combinatorial estimators used throughout the MOOD cost model.

    The query optimizer of the paper rests on three families of
    "balls-into-bins" estimators: the piecewise-linear color
    approximation [Cer 85] (the paper's [c(n,m,r)]), the exact block
    access formulas of Yao [Yao 77] and Cardenas [Car 75] kept here for
    validation benches, and the overlap probability [o(t,x,y)] of
    Section 4.1. *)

val ln_factorial : int -> float
(** [ln_factorial n] is [ln (n!)], computed via the log-gamma function so
    that it never overflows. Raises [Invalid_argument] for negative [n]. *)

val ln_choose : int -> int -> float
(** [ln_choose n k] is [ln (C(n,k))]. It is [neg_infinity] when the
    combination is empty ([k < 0] or [k > n]). *)

val choose : int -> int -> float
(** [choose n k] is the binomial coefficient as a float (possibly
    [infinity] for huge arguments). *)

val c_approx : n:int -> m:int -> r:int -> float
(** The paper's [c(n,m,r)]: an approximation to the expected number of
    distinct colors hit when [r] objects are chosen out of [n] objects
    uniformly distributed over [m] colors [Cer 85]:
    [r] when [r < m/2]; [(r + m) / 3] when [m/2 <= r < 2m]; [m] when
    [r >= 2m]. Degenerate inputs ([m <= 0] or [r <= 0]) yield [0.]. *)

val yao : n:int -> m:int -> r:int -> float
(** Exact expected number of blocks hit by Yao's formula [Yao 77]:
    [m * (1 - prod_{i=1..r} (n - n/m - i + 1) / (n - i + 1))] for [r]
    records selected without replacement from [n] records packed [n/m]
    to a block. *)

val cardenas : m:int -> r:int -> float
(** Cardenas' with-replacement approximation [Car 75]:
    [m * (1 - (1 - 1/m)^r)]. *)

val overlap_probability : t:int -> x:float -> y:float -> float
(** The paper's [o(t,x,y)]: probability that two subsets of cardinalities
    [x] and [y], drawn from [t] distinct objects, intersect:
    [1 - C(t-x, y) / C(t, y)]. The cardinalities arrive as floats because
    the optimizer feeds expected (fractional) set sizes; we evaluate the
    ratio with log-gamma so fractional arguments are well defined.
    Results are clamped to [0, 1]; degenerate inputs ([t <= 0]) give 1
    when both sets are non-empty. *)

val distinct_pages : pages:int -> hits:int -> float
(** [distinct_pages ~pages ~hits] is the Cardenas estimate
    [pages * (1 - (1 - 1/pages)^hits)] used in the forward-traversal and
    hash-partition cost formulas of Section 6 (their [nbpg] terms). *)
