(** Deterministic splittable pseudo-random generator (SplitMix64).

    The workload generators must be reproducible across runs and across
    machines, so they never touch [Random]'s global state; every
    generator threads one of these. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from [t]; both remain usable. *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). Raises [Invalid_argument] if [bound <= 0]. *)

val float : t -> bound:float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
