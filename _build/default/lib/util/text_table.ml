type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  let width = List.length t.header in
  let n = List.length row in
  if n > width then invalid_arg "Text_table.add_row: row wider than header";
  let padded = row @ List.init (width - n) (fun _ -> "") in
  t.rows <- padded :: t.rows

let column_widths t =
  let widths = Array.of_list (List.map String.length t.header) in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter account t.rows;
  widths

let pad width s = s ^ String.make (width - String.length s) ' '

let render t =
  let widths = column_widths t in
  let line cells sep =
    cells
    |> List.mapi (fun i cell -> pad widths.(i) cell)
    |> String.concat sep
  in
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "-+-"
  in
  let body = List.rev_map (fun row -> line row " | ") t.rows in
  String.concat "\n" (line t.header " | " :: rule :: body)

let print t =
  print_string (render t);
  print_newline ()
