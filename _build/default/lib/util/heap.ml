type 'a t = { cmp : 'a -> 'a -> int; mutable data : 'a array; mutable size : int }

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t element =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let fresh = Array.make (max 8 (2 * capacity)) element in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.cmp t.data.(left) t.data.(!smallest) < 0 then
    smallest := left;
  if right < t.size && t.cmp t.data.(right) t.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_min t = if t.size = 0 then None else Some t.data.(0)

let pop_min t =
  if t.size = 0 then None
  else begin
    let min = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some min
  end

let of_list ~cmp xs =
  let t = create ~cmp in
  List.iter (add t) xs;
  t

let drain t =
  let rec loop acc =
    match pop_min t with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []

let sort_list ~cmp xs = drain (of_list ~cmp xs)

let merge_sorted ~cmp runs =
  (* Heap of (head, rest) pairs ordered by head. *)
  let head_cmp (x, _) (y, _) = cmp x y in
  let t = create ~cmp:head_cmp in
  let push = function [] -> () | x :: rest -> add t (x, rest) in
  List.iter push runs;
  let rec loop acc =
    match pop_min t with
    | None -> List.rev acc
    | Some (x, rest) ->
        push rest;
        loop (x :: acc)
  in
  loop []

let sort_with_runs ~cmp ~run_length xs =
  if run_length <= 0 then invalid_arg "Heap.sort_with_runs: run_length <= 0";
  let rec split acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if n = run_length then split (List.rev current :: acc) [ x ] 1 rest
        else split acc (x :: current) (n + 1) rest
  in
  let runs = split [] [] 0 xs in
  merge_sorted ~cmp (List.map (sort_list ~cmp) runs)
