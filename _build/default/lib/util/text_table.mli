(** Fixed-width text tables.

    Used everywhere a paper table or a MoodView panel is rendered: the
    benches print paper-vs-measured rows with it, and the text MoodView
    uses it for class/object presentations. *)

type t

val create : header:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row. Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val render : t -> string
(** Renders with a header separator and column-width alignment, e.g.
    {v
    Class   | |C|   | nbpages
    --------+-------+--------
    Vehicle | 20000 | 2000
    v} *)

val print : t -> unit
(** [render] followed by [print_string] and a newline. *)
