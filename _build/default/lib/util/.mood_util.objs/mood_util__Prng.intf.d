lib/util/prng.mli:
