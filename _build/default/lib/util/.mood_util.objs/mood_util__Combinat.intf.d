lib/util/combinat.mli:
