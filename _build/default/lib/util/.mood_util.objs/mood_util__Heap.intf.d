lib/util/heap.mli:
