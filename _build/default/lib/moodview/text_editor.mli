(** The MoodView full-screen text editor (Abstract: "a database
    administration tool, a full screen text-editor, a SQL based query
    manager ... are also implemented").

    A line-oriented buffer with undo, search and replace, rendered as a
    numbered full-screen panel. MoodView uses it to edit MoodC method
    bodies before handing them to the kernel (see
    {!Moodview.method_editor}), and for ad-hoc SQL script editing. *)

type t

val create : ?contents:string -> unit -> t
(** A buffer initialized from [contents] (split at newlines; default
    empty). *)

val line_count : t -> int

val lines : t -> string list

val line : t -> int -> string option
(** 0-based. *)

val insert_line : t -> at:int -> string -> unit
(** Inserts before position [at]; [at >= line_count] appends. *)

val append_line : t -> string -> unit

val delete_line : t -> int -> bool
(** [false] when out of range. *)

val replace_line : t -> int -> string -> bool

val find : t -> string -> int list
(** Line numbers containing the substring, ascending. *)

val replace_all : t -> search:string -> replace:string -> int
(** Replaces every occurrence; returns how many were replaced. Raises
    [Invalid_argument] on an empty search string. *)

val undo : t -> bool
(** Reverts the last mutating operation ([false] when nothing to
    undo). Undo depth is unbounded within the session. *)

val contents : t -> string
(** The buffer joined with newlines (trailing newline when non-empty). *)

val render : ?cursor:int -> ?width:int -> t -> string
(** The full-screen panel: a title rule, numbered lines (the cursor
    line marked with [>]), and a status line with line count. *)
