lib/moodview/object_browser.mli: Mood Mood_model
