lib/moodview/object_browser.ml: Array Buffer List Mood Mood_algebra Mood_catalog Mood_executor Mood_funcmgr Mood_model Option Printf String
