lib/moodview/dag_layout.mli:
