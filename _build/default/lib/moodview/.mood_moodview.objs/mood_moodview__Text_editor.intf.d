lib/moodview/text_editor.mli:
