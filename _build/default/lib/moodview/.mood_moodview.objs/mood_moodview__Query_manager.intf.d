lib/moodview/query_manager.mli: Mood
