lib/moodview/moodview.ml: Buffer Format Fun List Mood Mood_catalog Mood_funcmgr Mood_model Mood_storage Mood_util Object_browser Printf Query_manager Schema_tools String Text_editor
