lib/moodview/moodview.mli: Mood Mood_model Mood_storage Query_manager Text_editor
