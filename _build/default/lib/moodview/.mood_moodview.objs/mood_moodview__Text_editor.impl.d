lib/moodview/text_editor.ml: Array Buffer List Printf String
