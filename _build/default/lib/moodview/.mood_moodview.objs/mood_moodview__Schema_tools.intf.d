lib/moodview/schema_tools.mli: Mood Mood_catalog Mood_model
