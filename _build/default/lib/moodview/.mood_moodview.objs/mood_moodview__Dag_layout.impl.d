lib/moodview/dag_layout.ml: Buffer Float Hashtbl List Option Printf String
