lib/moodview/schema_tools.ml: Buffer Dag_layout Format List Mood Mood_catalog Mood_model Mood_util Printf String
