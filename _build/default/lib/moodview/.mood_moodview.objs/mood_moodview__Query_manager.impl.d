lib/moodview/query_manager.ml: List Mood Mood_executor Mood_model Mood_util Printf
