(** Schema designer and the C++ data-definition path (Sections 9.2).

    The class designer wraps the catalog's dynamic schema operations
    (add/drop/rename attributes, create/delete methods). The cfront
    path is reproduced textually: [import_cpp] plays the role of the
    modified cfront that "extracts the schema information" from C++
    class declarations and stores it in the catalog; [export_cpp]
    generates the C++ header back from the catalog (MoodView "can
    convert graphically designed class hierarchy graph into C++
    code"). *)

val class_presentation : Mood.Db.t -> string -> string
(** The Class Presentation panel (Figure 9.2(b)): type name/id,
    superclasses, subclasses, methods, attributes. *)

val schema_browser : Mood.Db.t -> string
(** The Class Hierarchy Browser (Figure 9.1(c)): the user classes' DAG
    rendered with the crossing-minimizing layout. *)

type cpp_class = {
  cpp_name : string;
  cpp_bases : string list;
  cpp_fields : (string * Mood_model.Mtype.t) list;
  cpp_methods : Mood_catalog.Catalog.method_signature list;
}

exception Cpp_parse_error of string

val parse_cpp : string -> cpp_class list
(** Parses C++ class declarations of the shape
    {v
    class Vehicle : public Thing {
    public:
      int id;
      char name[32];
      VehicleDriveTrain* drivetrain;
      int lbweight();
    };
    v}
    Types map as cfront-extracted catalog entries: [int] → Integer,
    [long] → LongInteger, [float]/[double] → Float, [char] → Char,
    [char name[n]] → String(n), [bool] → Boolean, [T*] → Reference(T).
    Raises [Cpp_parse_error]. *)

val import_cpp : Mood.Db.t -> string -> string list
(** Parses and defines the classes in the catalog (in declaration
    order); returns the class names created. *)

val export_cpp : Mood.Db.t -> string -> string
(** The C++ header for one catalog class (own attributes and methods;
    inheritance expressed in the base-class list). *)
