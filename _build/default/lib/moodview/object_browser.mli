(** Generic object presentation and browsing (Section 9.3).

    "MOOD objects constitute graphs connecting atoms and constructors.
    MoodView has a generic display algorithm for displaying these
    object graphs and walking through the referenced objects." The
    kernel side of the protocol is the cursor buffer: for an object it
    returns (name, type, value) triples synthesized from the catalog
    (Section 9.4), and MoodView renders widgets from them — here, text.
    Updates are dynamically type-checked before being written back. *)

type field = { f_name : string; f_type : string; f_value : string }

val presentation : Mood.Db.t -> Mood_model.Oid.t -> field list
(** The kernel's buffer for one object: attribute name, type (from the
    catalog), displayed value. Raises [Not_found] for dangling
    objects. *)

val render_object : ?max_depth:int -> Mood.Db.t -> Mood_model.Oid.t -> string
(** The object-graph display: attributes one per line, references
    expanded recursively up to [max_depth] (default 2), cycles cut with
    ["<...>"]. *)

val update_attribute :
  Mood.Db.t -> Mood_model.Oid.t -> attr:string -> Mood_model.Value.t -> (unit, string) result
(** Widget write-back with dynamic type checking: the value must
    conform to the attribute's declared type, references must point to
    an instance of (a subclass of) the declared class. *)

val copy_attribute :
  Mood.Db.t -> from:Mood_model.Oid.t -> to_:Mood_model.Oid.t -> attr:string -> (unit, string) result
(** The copy/paste operation between two object presentations. *)

val activate_method :
  Mood.Db.t ->
  Mood_model.Oid.t ->
  method_name:string ->
  args:Mood_model.Value.t list ->
  (Mood_model.Value.t, string) result
(** Interactive method activation through the Function Manager. *)

type cursor

val open_cursor : Mood.Db.t -> string -> (cursor, string) result
(** Runs a SELECT and positions a cursor before the first result — the
    "cursor like mechanism which exists commonly in RDBMSs" of Section
    9.4. *)

val cursor_next : cursor -> field list option
(** Advances and presents the next object/tuple; [None] at the end. *)

val cursor_prev : cursor -> field list option
(** Sequencing back through the returned objects. *)
