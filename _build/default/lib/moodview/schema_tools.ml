module Mtype = Mood_model.Mtype
module Catalog = Mood_catalog.Catalog
module Table = Mood_util.Text_table

let class_presentation db name =
  let catalog = Mood.Db.catalog db in
  match Catalog.find_class catalog name with
  | None -> Printf.sprintf "unknown class %s" name
  | Some info ->
      let buf = Buffer.create 256 in
      let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pr "Class Presentation\n";
      pr "  Type Name  %s\n" info.Catalog.class_name;
      pr "  Type Id    %d\n" info.Catalog.class_id;
      pr "  Class Type %s\n"
        (match info.Catalog.kind with
        | Catalog.Class -> "User Class"
        | Catalog.Type_only -> "User Type");
      pr "  Superclasses: %s\n" (String.concat ", " info.Catalog.superclasses);
      pr "  Subclasses:   %s\n" (String.concat ", " (Catalog.subclasses catalog name));
      pr "  Methods:\n";
      List.iter
        (fun (m : Catalog.method_signature) ->
          pr "    %s (%s) %s\n" m.Catalog.method_name
            (String.concat ", "
               (List.map
                  (fun (p, ty) -> p ^ " " ^ Mtype.to_string ty)
                  m.Catalog.parameters))
            (Mtype.to_string m.Catalog.return_type))
        (Catalog.methods catalog name);
      pr "  Attributes:\n";
      let table = Table.create ~header:[ "FIELD NAME"; "DATA TYPE" ] in
      List.iter
        (fun (attr, ty) -> Table.add_row table [ attr; Mtype.to_string ty ])
        (Catalog.attributes catalog name);
      Buffer.add_string buf (Table.render table);
      Buffer.add_char buf '\n';
      Buffer.contents buf

let system_classes = [ "MoodsType"; "MoodsAttribute"; "MoodsFunction" ]

let schema_browser db =
  let catalog = Mood.Db.catalog db in
  let user_classes =
    List.filter
      (fun (info : Catalog.class_info) ->
        not (List.mem info.Catalog.class_name system_classes))
      (Catalog.all_classes catalog)
  in
  let nodes = List.map (fun (i : Catalog.class_info) -> i.Catalog.class_name) user_classes in
  let edges =
    List.concat_map
      (fun (i : Catalog.class_info) ->
        List.filter_map
          (fun super -> if List.mem super nodes then Some (super, i.Catalog.class_name) else None)
          i.Catalog.superclasses)
      user_classes
  in
  Dag_layout.render { Dag_layout.nodes; edges }

(* ------------------------------------------------------------------ *)
(* C++ import (the cfront substitute)                                  *)

type cpp_class = {
  cpp_name : string;
  cpp_bases : string list;
  cpp_fields : (string * Mtype.t) list;
  cpp_methods : Catalog.method_signature list;
}

exception Cpp_parse_error of string

let cpp_error fmt = Format.kasprintf (fun m -> raise (Cpp_parse_error m)) fmt

(* Tokenizer: identifiers, punctuation, numbers. Comments stripped. *)
let tokenize source =
  let n = String.length source in
  let out = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = source.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && source.[!i + 1] = '/' then
      while !i < n && source.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && !i + 1 < n && source.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (source.[!i] = '*' && source.[!i + 1] = '/') do
        incr i
      done;
      i := !i + 2
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word source.[!i] do
        incr i
      done;
      out := String.sub source start (!i - start) :: !out
    end
    else begin
      out := String.make 1 c :: !out;
      incr i
    end
  done;
  List.rev !out

let base_type = function
  | "int" -> Some (Mtype.Basic Mtype.Integer)
  | "long" -> Some (Mtype.Basic Mtype.Long_integer)
  | "float" | "double" -> Some (Mtype.Basic Mtype.Float)
  | "char" -> Some (Mtype.Basic Mtype.Char)
  | "bool" -> Some (Mtype.Basic Mtype.Boolean)
  | _ -> None

let parse_cpp source =
  let toks = ref (tokenize source) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let expect t =
    match peek () with
    | Some u when String.equal t u -> advance ()
    | Some u -> cpp_error "expected %S, found %S" t u
    | None -> cpp_error "expected %S at end of input" t
  in
  let ident () =
    match peek () with
    | Some t when String.length t > 0 && (t.[0] = '_' || (t.[0] >= 'A' && t.[0] <= 'z')) ->
        advance ();
        t
    | Some t -> cpp_error "expected identifier, found %S" t
    | None -> cpp_error "expected identifier at end of input"
  in
  let classes = ref [] in
  let rec parse_classes () =
    match peek () with
    | None -> ()
    | Some "class" ->
        advance ();
        let name = ident () in
        let bases = ref [] in
        if peek () = Some ":" then begin
          advance ();
          let rec base_list () =
            (match peek () with
            | Some ("public" | "private" | "protected" | "virtual") -> advance ()
            | _ -> ());
            bases := !bases @ [ ident () ];
            if peek () = Some "," then begin
              advance ();
              base_list ()
            end
          in
          base_list ()
        end;
        expect "{";
        let fields = ref [] and methods = ref [] in
        let rec members () =
          match peek () with
          | Some "}" -> advance ()
          | Some ("public" | "private" | "protected") ->
              advance ();
              expect ":";
              members ()
          | Some type_word -> begin
              advance ();
              let ty, target =
                match base_type type_word with
                | Some ty -> (ty, None)
                | None -> (Mtype.Reference type_word, Some type_word)
              in
              let is_pointer = peek () = Some "*" in
              if is_pointer then advance ();
              let member_name = ident () in
              begin
                match peek () with
                | Some "(" ->
                    (* method declaration *)
                    advance ();
                    let params = ref [] in
                    let rec param_list () =
                      match peek () with
                      | Some ")" -> advance ()
                      | Some p_type -> begin
                          advance ();
                          let p_ty =
                            match base_type p_type with
                            | Some ty -> ty
                            | None -> Mtype.Reference p_type
                          in
                          if peek () = Some "*" then advance ();
                          let p_name = ident () in
                          params := !params @ [ (p_name, p_ty) ];
                          match peek () with
                          | Some "," ->
                              advance ();
                              param_list ()
                          | _ -> param_list ()
                        end
                      | None -> cpp_error "unterminated parameter list"
                    in
                    param_list ();
                    expect ";";
                    let return_type =
                      match target, is_pointer with
                      | Some cls, true -> Mtype.Reference cls
                      | Some cls, false -> Mtype.Reference cls
                      | None, _ -> ty
                    in
                    methods :=
                      !methods
                      @ [ { Catalog.method_name = member_name;
                            parameters = !params;
                            return_type
                          }
                        ];
                    members ()
                | Some "[" ->
                    (* char name[32] → String(32) *)
                    advance ();
                    let len =
                      match peek () with
                      | Some digits -> begin
                          advance ();
                          match int_of_string_opt digits with
                          | Some n -> n
                          | None -> cpp_error "bad array length %S" digits
                        end
                      | None -> cpp_error "unterminated array declarator"
                    in
                    expect "]";
                    expect ";";
                    let ty =
                      match ty with
                      | Mtype.Basic Mtype.Char -> Mtype.Basic (Mtype.String len)
                      | other -> Mtype.List other
                    in
                    fields := !fields @ [ (member_name, ty) ];
                    members ()
                | Some ";" ->
                    advance ();
                    let field_ty =
                      if is_pointer then
                        Mtype.Reference (match target with Some t -> t | None -> type_word)
                      else ty
                    in
                    fields := !fields @ [ (member_name, field_ty) ];
                    members ()
                | Some other -> cpp_error "unexpected %S after member %s" other member_name
                | None -> cpp_error "unexpected end of input in class %s" name
              end
            end
          | None -> cpp_error "unterminated class %s" name
        in
        members ();
        (match peek () with Some ";" -> advance () | _ -> ());
        classes :=
          !classes
          @ [ { cpp_name = name; cpp_bases = !bases; cpp_fields = !fields; cpp_methods = !methods } ];
        parse_classes ()
    | Some other -> cpp_error "expected 'class', found %S" other
  in
  parse_classes ();
  !classes

let import_cpp db source =
  let catalog = Mood.Db.catalog db in
  let parsed = parse_cpp source in
  List.map
    (fun c ->
      ignore
        (Catalog.define_class catalog ~name:c.cpp_name ~superclasses:c.cpp_bases
           ~attributes:c.cpp_fields ~methods:c.cpp_methods ());
      c.cpp_name)
    parsed

let rec cpp_of_type ty =
  match ty with
  | Mtype.Basic Mtype.Integer -> ("int", "")
  | Mtype.Basic Mtype.Long_integer -> ("long", "")
  | Mtype.Basic Mtype.Float -> ("double", "")
  | Mtype.Basic Mtype.Char -> ("char", "")
  | Mtype.Basic Mtype.Boolean -> ("bool", "")
  | Mtype.Basic (Mtype.String n) -> ("char", Printf.sprintf "[%d]" n)
  | Mtype.Reference cls -> (cls ^ "*", "")
  | Mtype.Set inner | Mtype.List inner ->
      let base, _ = cpp_of_type inner in
      (base ^ "*", "[]")
  | Mtype.Tuple _ -> ("struct", "")

let export_cpp db name =
  let catalog = Mood.Db.catalog db in
  match Catalog.find_class catalog name with
  | None -> Printf.sprintf "// unknown class %s\n" name
  | Some info ->
      let buf = Buffer.create 256 in
      let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      let bases =
        match info.Catalog.superclasses with
        | [] -> ""
        | supers -> " : " ^ String.concat ", " (List.map (fun s -> "public " ^ s) supers)
      in
      pr "class %s%s {\npublic:\n" name bases;
      List.iter
        (fun (attr, ty) ->
          let base, suffix = cpp_of_type ty in
          pr "  %s %s%s;\n" base attr suffix)
        info.Catalog.own_attributes;
      List.iter
        (fun (m : Catalog.method_signature) ->
          let ret, _ = cpp_of_type m.Catalog.return_type in
          pr "  %s %s(%s);\n" ret m.Catalog.method_name
            (String.concat ", "
               (List.map
                  (fun (p, ty) ->
                    let base, suffix = cpp_of_type ty in
                    base ^ " " ^ p ^ suffix)
                  m.Catalog.parameters)))
        (Catalog.own_methods catalog name);
      pr "};\n";
      Buffer.contents buf
