(** The SQL-based query manager (Section 9.3): a query editor "with
    facilities for accessing previous queries in a session", executing
    through the kernel and formatting results as text tables. *)

type t

val create : Mood.Db.t -> t

val run : t -> string -> string
(** Executes one MOODSQL statement, records it in the history, and
    returns the rendered result (a table for SELECTs, a one-line
    acknowledgement for DDL/DML, the error message otherwise). *)

val history : t -> string list
(** Previous queries, most recent first. *)

val recall : t -> int -> string option
(** [recall t 0] is the most recent query. *)

val rerun : t -> int -> string option
(** Re-executes a history entry. *)
