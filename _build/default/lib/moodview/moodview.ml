module Catalog = Mood_catalog.Catalog
module Store = Mood_storage.Store
module Disk = Mood_storage.Disk
module Buffer_pool = Mood_storage.Buffer_pool
module Rtree = Mood_storage.Rtree
module Wal = Mood_storage.Wal
module Lock = Mood_storage.Lock_manager
module Extent = Mood_storage.Extent
module Table = Mood_util.Text_table

type t = { db : Mood.Db.t; qm : Query_manager.t }

let create db = { db; qm = Query_manager.create db }

let db t = t.db

let initial_window _t =
  String.concat "\n"
    [ "+----------------------- MoodView ------------------------+";
      "|  [Schema Browser]  [Class Designer]   [Object Browser]  |";
      "|  [Query Manager]   [Text Editor]      [Administration]  |";
      "|  [Spatial Index]   [C++ Definition]   [Method Editor]   |";
      "+----------------------------------------------------------+";
      ""
    ]

let schema_browser t = Schema_tools.schema_browser t.db

let class_designer t name = Schema_tools.class_presentation t.db name

let object_browser t oid = Object_browser.render_object t.db oid

let query_manager t = t.qm

let method_editor t ~class_name ~method_name =
  let sources = Mood_funcmgr.Function_manager.moodc_sources (Mood.Db.functions t.db) in
  match
    List.find_opt (fun (c, f, _) -> c = class_name && f = method_name) sources
  with
  | Some (_, _, source) -> Ok (Text_editor.create ~contents:source ())
  | None ->
      Error
        (Printf.sprintf "no MoodC body stored for %s::%s" class_name method_name)

let save_method t ~class_name ~method_name editor =
  match
    Catalog.find_method (Mood.Db.catalog t.db) ~class_name ~method_name
  with
  | None -> Error (Printf.sprintf "no signature for %s::%s in the catalog" class_name method_name)
  | Some m ->
      let header =
        Printf.sprintf "DEFINE METHOD %s::%s (%s) %s " class_name method_name
          (String.concat ", "
             (List.map
                (fun (p, ty) -> p ^ " " ^ Mood_model.Mtype.to_string ty)
                m.Catalog.parameters))
          (Mood_model.Mtype.to_string m.Catalog.return_type)
      in
      (match Mood.Db.exec t.db (header ^ Text_editor.contents editor) with
      | Ok _ -> Ok ()
      | Error e -> Error e)

let admin_panel t =
  let catalog = Mood.Db.catalog t.db in
  let store = Mood.Db.store t.db in
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "MOOD Database Administration\n";
  pr "----------------------------\n";
  let classes = Catalog.all_classes catalog in
  pr "classes: %d\n" (List.length classes);
  let table = Table.create ~header:[ "Class"; "Objects"; "Pages" ] in
  List.iter
    (fun (info : Catalog.class_info) ->
      if info.Catalog.kind = Catalog.Class then begin
        let ext = Catalog.own_extent catalog info.Catalog.class_name in
        Table.add_row table
          [ info.Catalog.class_name;
            string_of_int (Extent.count ext);
            string_of_int (Extent.page_count ext)
          ]
      end)
    classes;
  Buffer.add_string buf (Table.render table);
  Buffer.add_char buf '\n';
  let disk_counters = Disk.counters (Store.disk store) in
  pr "disk: %s\n" (Format.asprintf "%a" Disk.pp_counters disk_counters);
  let pool_stats = Buffer_pool.stats (Store.buffer store) in
  pr "buffer: hits=%d misses=%d evictions=%d\n" pool_stats.Buffer_pool.hits
    pool_stats.Buffer_pool.misses pool_stats.Buffer_pool.evictions;
  pr "log records: %d\n" (Wal.length (Store.wal store));
  pr "active transactions: %d\n" (Lock.active_transactions (Store.locks store));
  Buffer.contents buf

let spatial_tool t entries ~window =
  let store = Mood.Db.store t.db in
  let tree = Store.new_rtree store () in
  List.iter (fun (rect, label) -> Rtree.insert tree rect label) entries;
  let hits = Rtree.search tree window in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "R-tree spatial index\n";
  Buffer.add_string buf (Rtree.render tree ~show:Fun.id);
  Buffer.add_string buf
    (Printf.sprintf "window [%.1f,%.1f - %.1f,%.1f] -> %d hit(s): %s\n" window.Rtree.x0
       window.Rtree.y0 window.Rtree.x1 window.Rtree.y1 (List.length hits)
       (String.concat ", " (List.map snd hits)));
  Buffer.contents buf
