type t = { mutable buffer : string array; mutable history : string array list }

let split_lines contents =
  if contents = "" then [||]
  else begin
    let raw = String.split_on_char '\n' contents in
    (* a trailing newline does not create a phantom empty last line *)
    let raw =
      match List.rev raw with
      | "" :: rest -> List.rev rest
      | _ -> raw
    in
    Array.of_list raw
  end

let create ?(contents = "") () = { buffer = split_lines contents; history = [] }

let line_count t = Array.length t.buffer

let lines t = Array.to_list t.buffer

let line t i = if i >= 0 && i < line_count t then Some t.buffer.(i) else None

let checkpoint t = t.history <- Array.copy t.buffer :: t.history

let insert_line t ~at text =
  checkpoint t;
  let n = line_count t in
  let at = max 0 (min at n) in
  t.buffer <-
    Array.init (n + 1) (fun i ->
        if i < at then t.buffer.(i) else if i = at then text else t.buffer.(i - 1))

let append_line t text = insert_line t ~at:(line_count t) text

let delete_line t i =
  if i < 0 || i >= line_count t then false
  else begin
    checkpoint t;
    t.buffer <-
      Array.init (line_count t - 1) (fun j -> if j < i then t.buffer.(j) else t.buffer.(j + 1));
    true
  end

let replace_line t i text =
  if i < 0 || i >= line_count t then false
  else begin
    checkpoint t;
    t.buffer.(i) <- text;
    true
  end

let contains_substring line needle =
  let n = String.length line and m = String.length needle in
  let rec go i = i + m <= n && (String.sub line i m = needle || go (i + 1)) in
  m > 0 && go 0

let find t needle =
  if needle = "" then []
  else
    lines t
    |> List.mapi (fun i l -> (i, l))
    |> List.filter_map (fun (i, l) -> if contains_substring l needle then Some i else None)

let replace_in_line line ~search ~replace =
  let buf = Buffer.create (String.length line) in
  let n = String.length line and m = String.length search in
  let count = ref 0 in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub line !i m = search then begin
      Buffer.add_string buf replace;
      incr count;
      i := !i + m
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  (Buffer.contents buf, !count)

let replace_all t ~search ~replace =
  if search = "" then invalid_arg "Text_editor.replace_all: empty search";
  checkpoint t;
  let total = ref 0 in
  t.buffer <-
    Array.map
      (fun l ->
        let replaced, n = replace_in_line l ~search ~replace in
        total := !total + n;
        replaced)
      t.buffer;
  if !total = 0 then begin
    (* nothing changed: drop the useless checkpoint *)
    match t.history with [] -> () | _ :: rest -> t.history <- rest
  end;
  !total

let undo t =
  match t.history with
  | [] -> false
  | previous :: rest ->
      t.buffer <- previous;
      t.history <- rest;
      true

let contents t =
  match lines t with [] -> "" | ls -> String.concat "\n" ls ^ "\n"

let render ?(cursor = 0) ?(width = 60) t =
  let buf = Buffer.create 256 in
  let rule = String.make width '-' in
  Buffer.add_string buf ("+" ^ rule ^ "+\n");
  Buffer.add_string buf "| MoodView Text Editor\n";
  Buffer.add_string buf ("+" ^ rule ^ "+\n");
  Array.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "%c%3d | %s\n" (if i = cursor then '>' else ' ') (i + 1) l))
    t.buffer;
  Buffer.add_string buf ("+" ^ rule ^ "+\n");
  Buffer.add_string buf (Printf.sprintf "| %d line(s)\n" (line_count t));
  Buffer.contents buf
