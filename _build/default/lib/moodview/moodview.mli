(** The MoodView front end, text edition (Section 9).

    One [t] per session: tool panels correspond to the icons of the
    initial MoodView window (Figure 9.1(a)) — schema browser, class
    designer, object browser, query manager, database administration,
    and the R-tree spatial indexing tool. Every database operation goes
    through the kernel as SQL (Section 9.4). *)

type t

val create : Mood.Db.t -> t

val db : t -> Mood.Db.t

val initial_window : t -> string
(** The tool-icon panel. *)

val schema_browser : t -> string

val class_designer : t -> string -> string
(** The class presentation / designer panel for one class. *)

val object_browser : t -> Mood_model.Oid.t -> string

val query_manager : t -> Query_manager.t

val method_editor :
  t -> class_name:string -> method_name:string -> (Text_editor.t, string) result
(** Opens the stored MoodC source of a method in the text editor (the
    Method Presentation body panel of Figure 9.2(a)). *)

val save_method :
  t -> class_name:string -> method_name:string -> Text_editor.t -> (unit, string) result
(** Compiles the editor's buffer back through DEFINE METHOD: the
    signature comes from the catalog, the body from the editor. The
    running kernel picks the new body up immediately. *)

val admin_panel : t -> string
(** Database administration: class count, object counts per extent,
    buffer/disk statistics, lock table, log length. *)

val spatial_tool :
  t ->
  (Mood_storage.Rtree.rect * string) list ->
  window:Mood_storage.Rtree.rect ->
  string
(** Builds an R-tree over labelled rectangles, runs a window query, and
    renders tree plus hits — the "graphical indexing tool for the
    spatial data". *)
