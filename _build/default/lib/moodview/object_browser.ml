module Value = Mood_model.Value
module Mtype = Mood_model.Mtype
module Oid = Mood_model.Oid
module Catalog = Mood_catalog.Catalog
module Fm = Mood_funcmgr.Function_manager
module Executor = Mood_executor.Executor
module Collection = Mood_algebra.Collection

type field = { f_name : string; f_type : string; f_value : string }

let presentation db oid =
  let catalog = Mood.Db.catalog db in
  match Catalog.class_of_object catalog oid, Catalog.get_object catalog oid with
  | Some info, Some value ->
      let attrs = Catalog.attributes catalog info.Catalog.class_name in
      List.map
        (fun (name, ty) ->
          let v = Option.value ~default:Value.Null (Value.tuple_get value name) in
          { f_name = name; f_type = Mtype.to_string ty; f_value = Value.to_string v })
        attrs
  | _, _ -> raise Not_found

let render_object ?(max_depth = 2) db oid =
  let catalog = Mood.Db.catalog db in
  let buf = Buffer.create 256 in
  let rec walk indent depth seen oid =
    let pad = String.make indent ' ' in
    match Catalog.class_of_object catalog oid, Catalog.get_object catalog oid with
    | Some info, Some value ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" pad info.Catalog.class_name (Oid.to_string oid));
        let attrs = Catalog.attributes catalog info.Catalog.class_name in
        List.iter
          (fun (name, ty) ->
            let v = Option.value ~default:Value.Null (Value.tuple_get value name) in
            match v with
            | Value.Ref target ->
                if List.exists (Oid.equal target) seen then
                  Buffer.add_string buf (Printf.sprintf "%s  %s -> <...>\n" pad name)
                else if depth >= max_depth then
                  Buffer.add_string buf
                    (Printf.sprintf "%s  %s -> %s\n" pad name (Oid.to_string target))
                else begin
                  Buffer.add_string buf (Printf.sprintf "%s  %s ->\n" pad name);
                  walk (indent + 4) (depth + 1) (oid :: seen) target
                end
            | _ ->
                Buffer.add_string buf
                  (Printf.sprintf "%s  %s : %s = %s\n" pad name (Mtype.to_string ty)
                     (Value.to_string v)))
          attrs
    | _, _ -> Buffer.add_string buf (Printf.sprintf "%s<dangling %s>\n" pad (Oid.to_string oid))
  in
  walk 0 0 [] oid;
  Buffer.contents buf

let update_attribute db oid ~attr value =
  let catalog = Mood.Db.catalog db in
  match Catalog.class_of_object catalog oid, Catalog.get_object catalog oid with
  | Some info, Some current -> begin
      match Catalog.attribute_type catalog ~class_name:info.Catalog.class_name ~attr with
      | None -> Error (Printf.sprintf "class %s has no attribute %s" info.Catalog.class_name attr)
      | Some ty ->
          if not (Value.type_check value ty) then
            Error
              (Printf.sprintf "value %s does not conform to %s" (Value.to_string value)
                 (Mtype.to_string ty))
          else begin
            (* Dynamic class-level check for references. *)
            let class_ok =
              match value, Mtype.referenced_class ty with
              | Value.Ref target, Some expected -> begin
                  match Catalog.class_of_object catalog target with
                  | Some target_info ->
                      Catalog.is_subclass_of catalog
                        ~sub:target_info.Catalog.class_name ~super:expected
                  | None -> false
                end
              | _, _ -> true
            in
            if not class_ok then Error "reference to an instance of the wrong class"
            else begin
              let updated = Value.tuple_set current attr value in
              if Catalog.update_object catalog oid updated then Ok ()
              else Error "update failed"
            end
          end
    end
  | _, _ -> Error "object not found"

let copy_attribute db ~from ~to_ ~attr =
  let catalog = Mood.Db.catalog db in
  match Catalog.get_object catalog from with
  | None -> Error "source object not found"
  | Some value -> begin
      match Value.tuple_get value attr with
      | None -> Error (Printf.sprintf "source has no attribute %s" attr)
      | Some v -> update_attribute db to_ ~attr v
    end

let activate_method db oid ~method_name ~args =
  try Ok (Fm.invoke (Mood.Db.functions db) ~scope:(Mood.Db.scope db) ~self:oid ~function_name:method_name ~args)
  with Fm.Mood_exception { message; _ } -> Error message

type cursor = { results : Value.t array; mutable position : int; db : Mood.Db.t }

let fields_of_value db v =
  match v with
  | Value.Ref oid -> presentation db oid
  | Value.Tuple [ (_, Value.Ref oid) ] ->
      (* [SELECT v ...]: a single-object row presents the object itself,
         synthesized from the catalog (Section 9.4). *)
      presentation db oid
  | Value.Tuple fields ->
      List.map
        (fun (name, v) ->
          match v with
          | Value.Ref oid -> begin
              match Catalog.class_of_object (Mood.Db.catalog db) oid with
              | Some info ->
                  { f_name = name;
                    f_type = "REFERENCE (" ^ info.Catalog.class_name ^ ")";
                    f_value = Value.to_string v
                  }
              | None -> { f_name = name; f_type = "REFERENCE (?)"; f_value = Value.to_string v }
            end
          | _ -> { f_name = name; f_type = "-"; f_value = Value.to_string v })
        fields
  | _ -> [ { f_name = "value"; f_type = "-"; f_value = Value.to_string v } ]

let open_cursor db source =
  match Mood.Db.exec db source with
  | Ok (Mood.Db.Rows result) ->
      Ok { results = Array.of_list (Executor.result_values result); position = -1; db }
  | Ok _ -> Error "not a SELECT statement"
  | Error m -> Error m

let cursor_next cursor =
  if cursor.position + 1 >= Array.length cursor.results then None
  else begin
    cursor.position <- cursor.position + 1;
    Some (fields_of_value cursor.db cursor.results.(cursor.position))
  end

let cursor_prev cursor =
  if cursor.position - 1 < 0 then None
  else begin
    cursor.position <- cursor.position - 1;
    Some (fields_of_value cursor.db cursor.results.(cursor.position))
  end
