(** Layered DAG placement for the schema browser.

    "Their inheritance relationships is represented as a DAG ... and
    MoodView uses a DAG placement algorithm that minimizes crossovers"
    (Section 9.2). Classic Sugiyama-style pipeline: longest-path
    layering, then iterative barycenter ordering sweeps to reduce edge
    crossings, then text rendering. *)

type graph = {
  nodes : string list;
  edges : (string * string) list;  (** (superclass, subclass) *)
}

type layout = {
  layers : string list list;  (** top (roots) first, in final order *)
  crossings : int;            (** remaining edge crossings *)
}

val layout : graph -> layout
(** Raises [Invalid_argument] if an edge mentions an unknown node or
    the graph has a cycle. *)

val crossings_of : graph -> string list list -> int
(** Crossing count of a given layering/order (exposed for the
    barycenter-improvement tests). *)

val render : graph -> string
(** ASCII rendering: one row per layer, nodes boxed, child lists
    indicated beneath each node. *)
