type graph = { nodes : string list; edges : (string * string) list }

type layout = { layers : string list list; crossings : int }

let check graph =
  List.iter
    (fun (a, b) ->
      if not (List.mem a graph.nodes && List.mem b graph.nodes) then
        invalid_arg (Printf.sprintf "Dag_layout: edge %s -> %s mentions unknown node" a b))
    graph.edges

(* Longest-path layering: a node's layer is 1 + max of its parents'. *)
let layer_assignment graph =
  let memo = Hashtbl.create 16 in
  let rec depth seen node =
    if List.mem node seen then invalid_arg "Dag_layout: cycle in inheritance graph";
    match Hashtbl.find_opt memo node with
    | Some d -> d
    | None ->
        let parents = List.filter_map (fun (a, b) -> if b = node then Some a else None) graph.edges in
        let d =
          match parents with
          | [] -> 0
          | _ -> 1 + List.fold_left (fun m p -> max m (depth (node :: seen) p)) 0 parents
        in
        Hashtbl.replace memo node d;
        d
  in
  List.map (fun n -> (n, depth [] n)) graph.nodes

let layers_of_assignment assignment =
  let max_layer = List.fold_left (fun m (_, d) -> max m d) 0 assignment in
  List.init (max_layer + 1) (fun d ->
      List.filter_map (fun (n, d') -> if d = d' then Some n else None) assignment)

(* Count crossings between consecutive layers: pairs of edges whose
   endpoint orders invert. *)
let crossings_between upper lower edges =
  let position layer n =
    let rec go i = function
      | [] -> None
      | x :: rest -> if String.equal x n then Some i else go (i + 1) rest
    in
    go 0 layer
  in
  let spans =
    List.filter_map
      (fun (a, b) ->
        match position upper a, position lower b with
        | Some ua, Some lb -> Some (ua, lb)
        | _, _ -> None)
      edges
  in
  let rec count = function
    | [] -> 0
    | (u1, l1) :: rest ->
        List.length
          (List.filter (fun (u2, l2) -> (u1 < u2 && l1 > l2) || (u1 > u2 && l1 < l2)) rest)
        + count rest
  in
  count spans

let crossings_of graph layers =
  let rec go = function
    | upper :: (lower :: _ as rest) ->
        crossings_between upper lower graph.edges + go rest
    | [ _ ] | [] -> 0
  in
  go layers

(* Barycenter sweep: order each layer by the mean position of its
   neighbours in the adjacent layer. *)
let barycenter_order graph layers =
  let reorder reference layer ~parents =
    let position n =
      let rec go i = function
        | [] -> None
        | x :: rest -> if String.equal x n then Some i else go (i + 1) rest
      in
      go 0 reference
    in
    let weight n =
      let neighbours =
        List.filter_map
          (fun (a, b) ->
            if parents && String.equal b n then position a
            else if (not parents) && String.equal a n then position b
            else None)
          graph.edges
      in
      match neighbours with
      | [] -> float_of_int (Option.value ~default:0 (position n))
      | _ ->
          List.fold_left (fun acc i -> acc +. float_of_int i) 0. neighbours
          /. float_of_int (List.length neighbours)
    in
    List.stable_sort (fun a b -> Float.compare (weight a) (weight b)) layer
  in
  let down layers =
    let rec go prev = function
      | [] -> []
      | layer :: rest ->
          let ordered = match prev with None -> layer | Some p -> reorder p layer ~parents:true in
          ordered :: go (Some ordered) rest
    in
    go None layers
  in
  let up layers =
    (* Upward sweep: reorder each layer by its children's positions. *)
    let rec go next = function
      | [] -> []
      | layer :: rest ->
          let ordered =
            match next with None -> layer | Some n -> reorder n layer ~parents:false
          in
          ordered :: go (Some ordered) rest
    in
    List.rev (go None (List.rev layers))
  in
  let rec sweep layers best best_crossings remaining =
    if remaining = 0 then best
    else begin
      let layers = up (down layers) in
      let c = crossings_of graph layers in
      if c < best_crossings then sweep layers layers c (remaining - 1)
      else sweep layers best best_crossings (remaining - 1)
    end
  in
  sweep layers layers (crossings_of graph layers) 4

let layout graph =
  check graph;
  let layers = layers_of_assignment (layer_assignment graph) in
  let layers = barycenter_order graph layers in
  { layers; crossings = crossings_of graph layers }

let render graph =
  let { layers; crossings } = layout graph in
  let buf = Buffer.create 256 in
  List.iteri
    (fun depth layer ->
      Buffer.add_string buf (Printf.sprintf "Layer %d: " depth);
      Buffer.add_string buf
        (String.concat "   " (List.map (fun n -> "[" ^ n ^ "]") layer));
      Buffer.add_char buf '\n';
      List.iter
        (fun n ->
          let children =
            List.filter_map (fun (a, b) -> if a = n then Some b else None) graph.edges
          in
          if children <> [] then
            Buffer.add_string buf
              (Printf.sprintf "  %s |> %s\n" n (String.concat ", " children)))
        layer)
    layers;
  Buffer.add_string buf (Printf.sprintf "(edge crossings: %d)\n" crossings);
  Buffer.contents buf
